package obs

import (
	"strings"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket geometry: powers of
// two from 2^16ns, upper-inclusive bounds, and the +Inf overflow
// bucket. The Prometheus exposition and cross-process mergeability
// both depend on every Histogram agreeing on these boundaries.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := HistogramBounds()
	if len(bounds) != histBuckets {
		t.Fatalf("len(bounds) = %d, want %d", len(bounds), histBuckets)
	}
	if bounds[0] != 65536*time.Nanosecond {
		t.Errorf("bounds[0] = %v, want 65.536µs", bounds[0])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != bounds[i-1]*2 {
			t.Errorf("bounds[%d] = %v, want double of %v", i, bounds[i], bounds[i-1])
		}
	}

	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{histMinBound - 1, 0},
		{histMinBound, 0},     // bounds are upper-inclusive
		{histMinBound + 1, 1}, // first duration past a bound goes up
		{2 * histMinBound, 1},
		{2*histMinBound + 1, 2},
		{bounds[len(bounds)-1], histBuckets - 1},
		{bounds[len(bounds)-1] + 1, histBuckets}, // +Inf overflow
		{time.Hour, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestHistogramSnapshot checks count/sum accounting, per-bucket
// counts, and the deterministic upper-bound percentile estimates.
func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P50 != 0 || len(s.Buckets) != 0 {
		t.Fatalf("zero-value snapshot not empty: %+v", s)
	}
	// Nine fast observations and one slow one: p50 lands in the first
	// bucket, p95 in the slow one.
	for i := 0; i < 9; i++ {
		h.Observe(10 * time.Microsecond)
	}
	slow := 10 * time.Millisecond
	h.Observe(slow)

	s := h.Snapshot()
	if s.Count != 10 {
		t.Errorf("Count = %d, want 10", s.Count)
	}
	if want := 9*10*time.Microsecond + slow; s.Sum != want {
		t.Errorf("Sum = %v, want %v", s.Sum, want)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets = %+v, want 2 non-empty", s.Buckets)
	}
	if s.Buckets[0].LE != histMinBound || s.Buckets[0].Count != 9 {
		t.Errorf("fast bucket = %+v, want le=%v count=9", s.Buckets[0], histMinBound)
	}
	if s.Buckets[1].Count != 1 || s.Buckets[1].LE < slow {
		t.Errorf("slow bucket = %+v, want count=1 with le >= %v", s.Buckets[1], slow)
	}
	if s.P50 != histMinBound {
		t.Errorf("P50 = %v, want %v (upper bound of the first bucket)", s.P50, histMinBound)
	}
	if s.P95 != s.Buckets[1].LE {
		t.Errorf("P95 = %v, want %v (upper bound of the slow bucket)", s.P95, s.Buckets[1].LE)
	}
}

// TestHistogramOverflowPercentile pins the +Inf bucket's "at least the
// top finite bound" percentile answer.
func TestHistogramOverflowPercentile(t *testing.T) {
	var h Histogram
	h.Observe(time.Hour) // past every finite bound
	s := h.Snapshot()
	top := histMinBound << (histBuckets - 1)
	if s.P50 != top {
		t.Errorf("P50 = %v, want top finite bound %v", s.P50, top)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].LE != 0 {
		t.Errorf("overflow bucket = %+v, want single le=0 entry", s.Buckets)
	}
}

// TestRegistryHistogram checks first-use creation and the name-sorted
// snapshot.
func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("b_lat").Observe(time.Millisecond)
	r.Histogram("a_lat").Observe(time.Millisecond)
	if r.Histogram("a_lat") != r.Histogram("a_lat") {
		t.Fatal("Histogram not idempotent")
	}
	vals := r.HistogramValues()
	if len(vals) != 2 || vals[0].Name != "a_lat" || vals[1].Name != "b_lat" {
		t.Fatalf("HistogramValues = %+v, want name-sorted a_lat, b_lat", vals)
	}
	if vals[0].Count != 1 {
		t.Errorf("a_lat count = %d, want 1", vals[0].Count)
	}
}

// TestWritePrometheusGolden pins the exposition byte-for-byte for a
// fixed registry: naming (instrep_ prefix), name-sorted ordering,
// cumulative histogram buckets in seconds, and the extra cache/health
// sections. Scrape configs and recording rules depend on these names
// not drifting.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("server_requests_report").Add(3)
	r.Counter("server_errors").Inc()
	r.Gauge("server_queue_depth").Set(2)
	h := r.Histogram("server_latency_report")
	h.Observe(50 * time.Microsecond)  // first bucket (le 0.065536)
	h.Observe(100 * time.Microsecond) // second bucket (le 0.131072)
	h.Observe(time.Hour)              // +Inf overflow

	var b strings.Builder
	r.WritePrometheus(&b,
		ExtraSection{Prefix: "cache_", Gauge: true, Values: []NamedValue{{Name: "hits", Value: 7}}},
		ExtraSection{Prefix: "health_", Values: []NamedValue{{Name: "runs_timed_out", Value: 1}}},
	)
	got := b.String()

	want := `# TYPE instrep_server_errors counter
instrep_server_errors 1
# TYPE instrep_server_requests_report counter
instrep_server_requests_report 3
# TYPE instrep_cache_hits gauge
instrep_cache_hits 7
# TYPE instrep_health_runs_timed_out counter
instrep_health_runs_timed_out 1
# TYPE instrep_server_queue_depth gauge
instrep_server_queue_depth 2
# TYPE instrep_server_latency_report histogram
instrep_server_latency_report_bucket{le="0.000065536"} 1
instrep_server_latency_report_bucket{le="0.000131072"} 2
instrep_server_latency_report_bucket{le="0.000262144"} 2
instrep_server_latency_report_bucket{le="0.000524288"} 2
instrep_server_latency_report_bucket{le="0.001048576"} 2
instrep_server_latency_report_bucket{le="0.002097152"} 2
instrep_server_latency_report_bucket{le="0.004194304"} 2
instrep_server_latency_report_bucket{le="0.008388608"} 2
instrep_server_latency_report_bucket{le="0.016777216"} 2
instrep_server_latency_report_bucket{le="0.033554432"} 2
instrep_server_latency_report_bucket{le="0.067108864"} 2
instrep_server_latency_report_bucket{le="0.134217728"} 2
instrep_server_latency_report_bucket{le="0.268435456"} 2
instrep_server_latency_report_bucket{le="0.536870912"} 2
instrep_server_latency_report_bucket{le="1.073741824"} 2
instrep_server_latency_report_bucket{le="2.147483648"} 2
instrep_server_latency_report_bucket{le="4.294967296"} 2
instrep_server_latency_report_bucket{le="8.589934592"} 2
instrep_server_latency_report_bucket{le="17.179869184"} 2
instrep_server_latency_report_bucket{le="34.359738368"} 2
instrep_server_latency_report_bucket{le="68.719476736"} 2
instrep_server_latency_report_bucket{le="137.438953472"} 2
instrep_server_latency_report_bucket{le="+Inf"} 3
instrep_server_latency_report_sum 3600.00015
instrep_server_latency_report_count 3
`
	if got != want {
		t.Errorf("Prometheus exposition drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
