package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-log-bucket duration histogram: observations are
// counted into a predetermined set of exponentially spaced buckets, so
// snapshots are deterministic functions of the observations (unlike
// Timer's sampled percentiles), cheap to take, and mergeable across
// processes — the property Prometheus histogram series (_bucket/_sum/
// _count) are built on.
//
// The bucket boundaries are powers of two from histMinBound (64µs,
// wide enough to resolve a cache hit) through histMinBound<<histBuckets-1
// (~137s, past any request timeout), plus an implicit +Inf overflow
// bucket. Every Histogram shares the same boundaries, so series from
// different endpoints, runs, or nodes can be added bucket-by-bucket.
//
// The zero value is ready to use and safe for concurrent use; Observe
// is two atomic adds and a bit-length computation (no locks, no
// allocation), cheap enough for per-request paths.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Int64
	buckets [histBuckets + 1]atomic.Uint64 // last = +Inf overflow
}

// Fixed bucket geometry: histBuckets finite bounds at
// histMinBound << i for i in [0, histBuckets).
const (
	histMinBound = 65536 * time.Nanosecond // 2^16 ns ≈ 65.5µs
	histBuckets  = 22                      // top finite bound 2^37 ns ≈ 137s
)

// HistogramBounds returns the finite bucket boundaries (upper-inclusive
// "le" bounds) shared by every Histogram, smallest first. The returned
// slice is fresh on every call.
func HistogramBounds() []time.Duration {
	out := make([]time.Duration, histBuckets)
	for i := range out {
		out[i] = histMinBound << i
	}
	return out
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= histMinBound<<i, or histBuckets (the +Inf bucket) when d
// exceeds every finite bound. Bounds are powers of two, so the index
// is a bit-length computation instead of a search.
func bucketIndex(d time.Duration) int {
	if d <= histMinBound {
		return 0
	}
	idx := bits.Len64(uint64(d-1)) - 16
	if idx > histBuckets {
		return histBuckets
	}
	return idx
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
	h.buckets[bucketIndex(d)].Add(1)
}

// Time runs fn and records how long it took.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// HistogramBucket is one non-empty bucket of a snapshot: the count of
// observations at or below LE (LE 0 = the +Inf overflow bucket).
// Counts are per-bucket, not cumulative; WritePrometheus accumulates
// them into Prometheus's cumulative form.
type HistogramBucket struct {
	LE    time.Duration `json:"le_ns"` // 0 = +Inf
	Count uint64        `json:"count"`
}

// HistogramStats is a point-in-time summary of a Histogram. P50/P95
// are upper-bound estimates (the bound of the bucket containing the
// percentile), deterministic for a given set of observations.
type HistogramStats struct {
	Count   uint64            `json:"count"`
	Sum     time.Duration     `json:"sum_ns"`
	P50     time.Duration     `json:"p50_ns"`
	P95     time.Duration     `json:"p95_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot summarizes the observations so far. A concurrent Observe
// may land between the count and bucket reads; the skew is at most the
// handful of in-flight observations.
func (h *Histogram) Snapshot() HistogramStats {
	s := HistogramStats{Count: h.count.Load(), Sum: time.Duration(h.sumNS.Load())}
	var counts [histBuckets + 1]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
		if counts[i] == 0 {
			continue
		}
		b := HistogramBucket{Count: counts[i]}
		if i < histBuckets {
			b.LE = histMinBound << i
		}
		s.Buckets = append(s.Buckets, b)
	}
	s.P50 = bucketPercentile(counts[:], total, 50)
	s.P95 = bucketPercentile(counts[:], total, 95)
	return s
}

// bucketPercentile returns the upper bound of the bucket containing
// the p-th percentile (nearest-rank over bucket counts). The +Inf
// bucket reports the top finite bound — an "at least" answer.
func bucketPercentile(counts []uint64, total uint64, p float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := uint64(p/100*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range counts {
		cum += n
		if cum >= rank {
			if i >= histBuckets {
				return histMinBound << (histBuckets - 1)
			}
			return histMinBound << i
		}
	}
	return histMinBound << (histBuckets - 1)
}
