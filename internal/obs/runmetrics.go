package obs

import (
	"fmt"
	"strings"
	"time"
)

// RunMetrics is the observability document produced for every
// pipeline run: the phase-timing tree, simulator counters, the retire
// rate over the measure window, and the sampled per-observer cost
// attribution. It is serialized inside the Report JSON (-json) and
// rendered by FormatText for `instrep run -metrics text`.
type RunMetrics struct {
	Benchmark string `json:"benchmark"`

	// TraceID is the run's trace identifier (empty when the run was not
	// traced) — the key into GET /debug/traces/{id} on the report
	// server, and printed by the CLI so a run's metrics can be
	// correlated with its trace.
	TraceID string `json:"trace_id,omitempty"`

	// Phases is the hierarchical wall-time breakdown of the run
	// (compile, load, skip, measure, collect, ...).
	Phases PhaseTiming `json:"phases"`

	// Sim aggregates the functional simulator's retirement counters
	// over the whole run (skip + measure).
	Sim SimCounters `json:"simulator"`

	// RetireRateMIPS is million instructions retired per wall-clock
	// second over the measure window.
	RetireRateMIPS float64 `json:"retire_rate_mips"`

	// ObserverSampleEvery is the attribution sampling period: one in
	// every N instructions is individually timed per observer.
	ObserverSampleEvery uint64 `json:"observer_sample_every,omitempty"`

	// Observers attributes analysis cost per attached observer.
	Observers []ObserverCost `json:"observers,omitempty"`

	// Waves, present when the run was re-measured by the min-of-N-waves
	// harness (instrep run -waves N), holds every wave's retire rate.
	// The enclosing metrics document is the fastest wave's, so
	// RetireRateMIPS == Waves.BestMIPS: the minimum-wall-time wave is
	// the closest observation of the machine's true (noise-free) speed,
	// and SpreadPct reports how noisy the measurement was.
	Waves *WaveStats `json:"waves,omitempty"`
}

// WaveStats summarizes a min-of-N-waves re-measurement.
type WaveStats struct {
	// N is the number of waves run.
	N int `json:"n"`
	// RatesMIPS holds each wave's retire rate in run order.
	RatesMIPS []float64 `json:"rates_mips"`
	// BestMIPS is the fastest wave (minimum measure wall time).
	BestMIPS float64 `json:"best_mips"`
	// WorstMIPS is the slowest wave.
	WorstMIPS float64 `json:"worst_mips"`
	// SpreadPct is (best-worst)/best — the noise band the waves saw.
	SpreadPct float64 `json:"spread_pct"`
}

// NewWaveStats builds the summary for one workload's wave rates.
func NewWaveStats(rates []float64) *WaveStats {
	if len(rates) == 0 {
		return nil
	}
	w := &WaveStats{N: len(rates), RatesMIPS: rates, BestMIPS: rates[0], WorstMIPS: rates[0]}
	for _, r := range rates[1:] {
		if r > w.BestMIPS {
			w.BestMIPS = r
		}
		if r < w.WorstMIPS {
			w.WorstMIPS = r
		}
	}
	if w.BestMIPS > 0 {
		w.SpreadPct = 100 * (w.BestMIPS - w.WorstMIPS) / w.BestMIPS
	}
	return w
}

// SimCounters are the simulator's retirement statistics.
type SimCounters struct {
	Retired       uint64       `json:"instructions_retired"`
	Loads         uint64       `json:"loads"`
	Stores        uint64       `json:"stores"`
	Branches      uint64       `json:"branches"`
	BranchesTaken uint64       `json:"branches_taken"`
	Syscalls      uint64       `json:"syscalls"`
	ClassMix      []ClassCount `json:"class_mix,omitempty"`
}

// ClassCount is one opcode-class entry of the instruction mix.
type ClassCount struct {
	Class string `json:"class"`
	Count uint64 `json:"count"`
}

// ObserverCost is the sampled cost attribution for one observer.
type ObserverCost struct {
	Name string `json:"name"`
	// Samples is how many instructions were individually timed.
	Samples uint64 `json:"samples"`
	// SampledNS is the summed time of the timed calls only.
	SampledNS int64 `json:"sampled_ns"`
	// EstimatedNS extrapolates SampledNS over every instruction
	// (SampledNS * sample period).
	EstimatedNS int64 `json:"estimated_ns"`
	// SharePct is this observer's share of total attributed time.
	SharePct float64 `json:"share_pct"`
}

// FormatText renders the metrics as an indented human-readable tree.
// The output is deterministic for a given RunMetrics value.
func (m *RunMetrics) FormatText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run metrics: %s\n", m.Benchmark)
	if m.TraceID != "" {
		fmt.Fprintf(&b, "trace: %s\n", m.TraceID)
	}
	b.WriteString("phases:\n")
	writePhase(&b, m.Phases, 1)
	b.WriteString("simulator:\n")
	kv := func(k string, v string) { fmt.Fprintf(&b, "  %-22s %s\n", k, v) }
	kv("instructions retired", groupCount(m.Sim.Retired))
	kv("retire rate", fmt.Sprintf("%.2f MIPS", m.RetireRateMIPS))
	if w := m.Waves; w != nil {
		kv("waves", fmt.Sprintf("best-of-%d %.2f MIPS (worst %.2f, spread %.1f%%)",
			w.N, w.BestMIPS, w.WorstMIPS, w.SpreadPct))
	}
	kv("loads", groupCount(m.Sim.Loads))
	kv("stores", groupCount(m.Sim.Stores))
	kv("branches", fmt.Sprintf("%s (%s taken)",
		groupCount(m.Sim.Branches), groupCount(m.Sim.BranchesTaken)))
	kv("syscalls", groupCount(m.Sim.Syscalls))
	if len(m.Sim.ClassMix) > 0 {
		var parts []string
		for _, c := range m.Sim.ClassMix {
			pctv := 0.0
			if m.Sim.Retired > 0 {
				pctv = 100 * float64(c.Count) / float64(m.Sim.Retired)
			}
			parts = append(parts, fmt.Sprintf("%s %.1f%%", c.Class, pctv))
		}
		kv("class mix", strings.Join(parts, ", "))
	}
	if len(m.Observers) > 0 {
		fmt.Fprintf(&b, "observers (sampled 1/%d, estimated):\n", m.ObserverSampleEvery)
		for _, o := range m.Observers {
			fmt.Fprintf(&b, "  %-12s %5.1f%%  %s\n", o.Name, o.SharePct,
				FormatDuration(time.Duration(o.EstimatedNS)))
		}
	}
	return b.String()
}

func writePhase(b *strings.Builder, p PhaseTiming, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%-*s %s\n", indent, 24-2*depth, p.Name,
		FormatDuration(time.Duration(p.WallNS)))
	for _, c := range p.Children {
		writePhase(b, c, depth+1)
	}
}

// groupCount renders n with thousands separators.
func groupCount(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return strings.Join(append([]string{s}, parts...), ",")
}
