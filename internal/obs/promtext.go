package obs

// Prometheus text exposition (version 0.0.4) for a Registry. The
// report server content-negotiates /metrics between its JSON document
// and this format; the series here are what a scrape config ingests.
//
// Naming: every series is `instrep_` + the registry metric name, which
// is why registry names are snake_case with subsystem prefixes
// (server_requests_report, server_latency_report, ...). Histograms
// expand into the conventional _bucket{le="..."}/_sum/_count triple
// with le and _sum in seconds; output is name-sorted and therefore
// byte-stable for a given set of metric values, which the golden test
// pins.

import (
	"fmt"
	"io"
	"strconv"
	"time"
)

// MetricNamespace prefixes every Prometheus series name exported by
// WritePrometheus.
const MetricNamespace = "instrep_"

// ExtraSection is a named group of values merged into a Prometheus
// exposition under its own prefix — how the report server folds cache
// and health counters (which live outside the Registry maps) into the
// scrape.
type ExtraSection struct {
	Prefix string // e.g. "cache_" — series become instrep_cache_<name>
	Gauge  bool   // render as gauge instead of counter
	Values []NamedValue
}

// WritePrometheus renders the registry (and any extra sections) in
// Prometheus text exposition format: counters first, then gauges, then
// histograms, each group name-sorted.
func (r *Registry) WritePrometheus(w io.Writer, extras ...ExtraSection) {
	for _, v := range r.CounterValues() {
		writeSimple(w, MetricNamespace+v.Name, "counter", v.Value)
	}
	for _, e := range extras {
		kind := "counter"
		if e.Gauge {
			kind = "gauge"
		}
		for _, v := range e.Values {
			writeSimple(w, MetricNamespace+e.Prefix+v.Name, kind, v.Value)
		}
	}
	for _, v := range r.GaugeValues() {
		writeSimple(w, MetricNamespace+v.Name, "gauge", v.Value)
	}
	for _, h := range r.HistogramValues() {
		writeHistogram(w, MetricNamespace+h.Name, h.HistogramStats)
	}
}

func writeSimple(w io.Writer, name, kind string, v int64) {
	fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, kind, name, v)
}

// writeHistogram expands one histogram into cumulative _bucket series
// (le in seconds, always ending with le="+Inf"), _sum (seconds), and
// _count. Snapshot buckets are per-bucket counts, so accumulate.
func writeHistogram(w io.Writer, name string, s HistogramStats) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	i := 0
	for _, le := range HistogramBounds() {
		for i < len(s.Buckets) && s.Buckets[i].LE != 0 && s.Buckets[i].LE <= le {
			cum += s.Buckets[i].Count
			i++
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatSeconds(le), cum)
	}
	for ; i < len(s.Buckets); i++ { // +Inf overflow bucket (LE 0), if present
		cum += s.Buckets[i].Count
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatSeconds(s.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// formatSeconds renders a duration as a decimal seconds literal with
// no trailing zeros (0.065536, 1.048576, 137.438953472) — stable
// across runs, unlike %g which switches to exponent notation.
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', -1, 64)
}
