package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestTraceLifecycle covers mint → span tree → outcome → Doc: the
// exact round trip the report server's /debug/traces handler serves.
func TestTraceLifecycle(t *testing.T) {
	tr := NewTrace("GET /v1/report/lzw")
	if len(tr.ID()) != 16 {
		t.Fatalf("trace ID %q: want 16 hex chars", tr.ID())
	}
	tr.Root().SetAttr("status", 200)
	child := tr.Root().StartChild("sim")
	child.SetAttr("workload", "lzw")
	child.End()
	tr.SetOutcome("ok")
	tr.End()

	if tr.Outcome() != "ok" {
		t.Errorf("outcome = %q", tr.Outcome())
	}
	doc := tr.Doc()
	if doc.ID != tr.ID() || doc.Outcome != "ok" {
		t.Fatalf("doc header wrong: %+v", doc)
	}
	if doc.Spans.Attrs["status"] != 200 {
		t.Errorf("root attrs = %v", doc.Spans.Attrs)
	}
	sim := doc.Spans.Find("sim")
	if sim == nil || sim.Attrs["workload"] != "lzw" {
		t.Fatalf("sim span lost: %+v", doc.Spans)
	}
	if doc.Spans.Find("nope") != nil {
		t.Error("Find invented a span")
	}

	// Two traces never share an ID (the store keys on it).
	if NewTrace("x").ID() == NewTrace("x").ID() {
		t.Error("trace IDs collide")
	}
}

// TestTraceStoreAlwaysKeep pins the two-ring retention policy: kept
// (error/slow/shed) traces survive a flood of healthy traces that
// overflows the normal ring, and both rings evict FIFO at capacity.
func TestTraceStoreAlwaysKeep(t *testing.T) {
	s := NewTraceStore(4)

	kept := NewTrace("error")
	kept.End()
	s.Add(kept, true)

	// Flood with twice the capacity of healthy traces.
	var lastNormal *Trace
	for i := 0; i < 8; i++ {
		tr := NewTrace(fmt.Sprintf("ok-%d", i))
		tr.End()
		s.Add(tr, false)
		lastNormal = tr
	}

	if got, ok := s.Get(kept.ID()); !ok || got != kept {
		t.Fatal("kept trace evicted by healthy traffic")
	}
	if _, ok := s.Get(lastNormal.ID()); !ok {
		t.Fatal("newest normal trace missing")
	}
	if n := s.Len(); n != 5 { // 4 normal + 1 kept
		t.Fatalf("Len = %d, want 5", n)
	}

	// Kept ring evicts FIFO at its own capacity, independent of the
	// normal ring.
	for i := 0; i < 4; i++ {
		tr := NewTrace(fmt.Sprintf("err-%d", i))
		tr.End()
		s.Add(tr, true)
	}
	if _, ok := s.Get(kept.ID()); ok {
		t.Fatal("kept ring did not evict its oldest entry at capacity")
	}

	// List leads with kept traces (newest first), flagged Kept.
	list := s.List()
	if len(list) != 8 {
		t.Fatalf("List len = %d, want 8", len(list))
	}
	if !list[0].Kept || list[0].Name != "err-3" {
		t.Fatalf("List[0] = %+v, want newest kept trace", list[0])
	}
	if list[4].Kept || list[4].Name != "ok-7" {
		t.Fatalf("List[4] = %+v, want newest normal trace", list[4])
	}
	if _, ok := s.Get("ffffffffffffffff"); ok {
		t.Error("Get invented a trace")
	}
}

// TestContextPropagation covers the ctx plumbing that carries a trace
// from the server edge through the runner into core: WithTrace installs
// the root as current span, StartSpanCtx nests, and the nil-safety
// contracts hold for bare contexts.
func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil || TraceIDFrom(ctx) != "" || SpanFrom(ctx) != nil {
		t.Fatal("bare context leaked a trace or span")
	}
	// Nil-safe span ops: the CLI path has no trace unless -progress asks.
	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
	if nilSpan.Attr("k") != nil {
		t.Error("nil span stored an attr")
	}

	tr := NewTrace("req")
	ctx = WithTrace(ctx, tr)
	if TraceFrom(ctx) != tr || TraceIDFrom(ctx) != tr.ID() {
		t.Fatal("WithTrace lost the trace")
	}
	if SpanFrom(ctx) != tr.Root() {
		t.Fatal("WithTrace did not install the root as current span")
	}

	sim, simCtx := StartSpanCtx(ctx, "sim")
	if SpanFrom(simCtx) != sim {
		t.Fatal("StartSpanCtx did not install the child")
	}
	inner, _ := StartSpanCtx(simCtx, "run")
	inner.End()
	sim.End()
	tr.End()

	tree := tr.Doc().Spans
	if tree.Find("sim") == nil || tree.Find("run") == nil {
		t.Fatalf("span nesting lost: %+v", tree)
	}
	// "run" must be under "sim", not a sibling.
	if tree.Find("sim").Find("run") == nil {
		t.Fatal("run span not nested under sim")
	}

	// StartSpanCtx without a trace still yields a usable free span.
	free, freeCtx := StartSpanCtx(context.Background(), "solo")
	if free == nil || SpanFrom(freeCtx) != free {
		t.Fatal("free StartSpanCtx broken")
	}
	free.End()
	if free.Duration() < 0 {
		t.Error("negative span duration")
	}
}

// TestJSONLogger pins the structured access-log format: one JSON
// object per line, ts/level/msg first, kv pairs preserved in order,
// and unmarshalable values degrading to strings instead of dropping
// the line.
func TestJSONLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONLogger(&buf, LevelInfo)
	l.Debug("hidden", "k", "v") // below level: no output
	l.Info("request", "path", "/v1/report/lzw", "status", 200,
		"err", errors.New("boom"), "ch", make(chan int), "odd")

	if strings.Contains(buf.String(), "hidden") {
		t.Fatal("level filter broken in JSON mode")
	}
	line := strings.TrimSuffix(buf.String(), "\n")
	if strings.Contains(line, "\n") {
		t.Fatalf("JSON log emitted multiple lines: %q", line)
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("log line is not valid JSON: %v\n%s", err, line)
	}
	if entry["level"] != "INFO" || entry["msg"] != "request" {
		t.Errorf("header fields wrong: %v", entry)
	}
	if _, err := time.Parse(time.RFC3339Nano, entry["ts"].(string)); err != nil {
		t.Errorf("ts not RFC3339Nano: %v", entry["ts"])
	}
	if entry["path"] != "/v1/report/lzw" || entry["status"] != float64(200) {
		t.Errorf("kv fields wrong: %v", entry)
	}
	if entry["err"] != "boom" {
		t.Errorf("error value = %v, want its message", entry["err"])
	}
	if s, ok := entry["ch"].(string); !ok || s == "" {
		t.Errorf("unmarshalable value should degrade to a string, got %v", entry["ch"])
	}
	if entry["!extra"] != "odd" {
		t.Errorf("odd trailing kv = %v, want under !extra", entry["!extra"])
	}
}

// TestHealthCountersScoped pins satellite (a): health counters are
// per-Registry state, Reset clears them, and Values reports nonzero
// counters name-sorted. The package-level obs.Health shim aliases the
// Default registry for the CLI.
func TestHealthCountersScoped(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Health().Cancels.Inc()
	a.Health().Watchdogs.Add(2)
	if b.Health().Cancels.Value() != 0 {
		t.Fatal("health counters leaked across registries")
	}
	vals := a.Health().Values()
	if len(vals) != 2 || vals[0].Name != "runs_canceled" || vals[1].Name != "watchdog_aborts" {
		t.Fatalf("Values = %+v, want name-sorted nonzero counters", vals)
	}
	if vals[1].Value != 2 {
		t.Errorf("watchdog_aborts = %d, want 2", vals[1].Value)
	}

	a.Reset()
	if a.Health().Cancels.Value() != 0 || len(a.Health().Values()) != 0 {
		t.Fatal("Registry.Reset did not clear health counters")
	}

	if Health != Default.Health() {
		t.Fatal("obs.Health is not the Default registry's counters")
	}
}

// TestHistogramTime covers the convenience timer used by request
// instrumentation.
func TestHistogramTime(t *testing.T) {
	var h Histogram
	h.Time(func() { time.Sleep(time.Millisecond) })
	s := h.Snapshot()
	if s.Count != 1 || s.Sum < time.Millisecond {
		t.Fatalf("Time() recorded %+v", s)
	}
}
