package obs

// Request-scoped tracing: a Trace is a trace ID plus a root Span whose
// tree records where one request (or one CLI run) spent its time —
// queue wait, cache tier, simulation phases, cache write — with
// attributes attached to each span. Traces travel through
// context.Context; the report server mints one per request at the
// HTTP edge and repro.RunWorkload mints one per run when the caller
// did not. A bounded TraceStore retains recent traces for
// GET /debug/traces, always keeping slow, shed, and errored requests
// even when ordinary traffic would have rotated them out. See
// DESIGN.md §14.

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Trace is one request's (or run's) trace: an ID and the root span of
// its span tree. Safe for concurrent use.
type Trace struct {
	id   string
	root *Span

	mu      sync.Mutex
	outcome string
}

// NewTrace mints a trace with a fresh random 64-bit hex ID and a root
// span named name, started now.
func NewTrace(name string) *Trace {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return &Trace{id: hex.EncodeToString(b[:]), root: StartSpan(name)}
}

// ID returns the trace's hex identifier.
func (t *Trace) ID() string { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// SetOutcome records how the traced work ended ("ok", "error", "shed",
// "timeout", "disconnect", ...).
func (t *Trace) SetOutcome(outcome string) {
	t.mu.Lock()
	t.outcome = outcome
	t.mu.Unlock()
}

// Outcome returns the recorded outcome ("" while in flight).
func (t *Trace) Outcome() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.outcome
}

// End ends the root span and returns the trace's total duration.
func (t *Trace) End() time.Duration { return t.root.End() }

// TraceDoc is the serialized form of a trace: the /debug/traces/{id}
// response body.
type TraceDoc struct {
	ID      string      `json:"id"`
	Outcome string      `json:"outcome,omitempty"`
	Spans   PhaseTiming `json:"spans"`
}

// Doc snapshots the trace for serving.
func (t *Trace) Doc() TraceDoc {
	return TraceDoc{ID: t.id, Outcome: t.Outcome(), Spans: t.root.Tree()}
}

// TraceSummary is one row of the /debug/traces listing.
type TraceSummary struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Outcome string `json:"outcome,omitempty"`
	WallNS  int64  `json:"wall_ns"`
	Wall    string `json:"wall"`
	Kept    bool   `json:"kept,omitempty"` // retained by the always-keep policy
}

// TraceStore is a bounded in-memory store of finished traces with two
// retention classes: ordinary traces rotate through a FIFO ring of
// Cap slots, while traces the caller marks keep (slow, shed, errored)
// rotate through their own ring of equal size — so a flood of healthy
// traffic can never evict the requests worth debugging. Safe for
// concurrent use.
type TraceStore struct {
	mu     sync.Mutex
	cap    int
	normal []*storedTrace // FIFO, oldest first
	kept   []*storedTrace
	byID   map[string]*storedTrace
}

type storedTrace struct {
	trace *Trace
	kept  bool
}

// DefaultTraceStoreCap is the per-class capacity when NewTraceStore is
// given a non-positive size.
const DefaultTraceStoreCap = 256

// NewTraceStore builds a store retaining up to max traces per
// retention class (<= 0 = DefaultTraceStoreCap).
func NewTraceStore(max int) *TraceStore {
	if max <= 0 {
		max = DefaultTraceStoreCap
	}
	return &TraceStore{cap: max, byID: make(map[string]*storedTrace)}
}

// Add stores a finished trace. keep pins it to the always-keep class
// so ordinary traffic cannot rotate it out.
func (s *TraceStore) Add(t *Trace, keep bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &storedTrace{trace: t, kept: keep}
	ring := &s.normal
	if keep {
		ring = &s.kept
	}
	if len(*ring) >= s.cap {
		evicted := (*ring)[0]
		*ring = (*ring)[1:]
		delete(s.byID, evicted.trace.ID())
	}
	*ring = append(*ring, st)
	s.byID[t.ID()] = st
}

// Get returns the stored trace with the given ID.
func (s *TraceStore) Get(id string) (*Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return st.trace, true
}

// Len returns how many traces are stored across both classes.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.normal) + len(s.kept)
}

// List summarizes every stored trace, newest first (kept and ordinary
// interleaved by recency of storage within their rings: kept traces
// first, then ordinary, each newest first).
func (s *TraceStore) List() []TraceSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceSummary, 0, len(s.normal)+len(s.kept))
	add := func(ring []*storedTrace) {
		for i := len(ring) - 1; i >= 0; i-- {
			st := ring[i]
			d := st.trace.Root().Duration()
			out = append(out, TraceSummary{
				ID:      st.trace.ID(),
				Name:    st.trace.Root().Name(),
				Outcome: st.trace.Outcome(),
				WallNS:  d.Nanoseconds(),
				Wall:    FormatDuration(d),
				Kept:    st.kept,
			})
		}
	}
	add(s.kept)
	add(s.normal)
	return out
}
