package obs

import (
	"sort"
	"sync"
	"time"
)

// maxTimerSamples bounds the per-timer sample buffer. When full the
// buffer is decimated (every other sample dropped) and the sampling
// stride doubles, so long runs keep an evenly spaced subset rather
// than only the earliest observations.
const maxTimerSamples = 4096

// Timer accumulates durations and summarizes them as count/sum/max
// plus p50/p95 percentiles. The zero value is ready to use and safe
// for concurrent use.
type Timer struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	max     time.Duration
	stride  uint64 // record one sample per stride observations
	samples []time.Duration
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count++
	t.sum += d
	if d > t.max {
		t.max = d
	}
	if t.stride == 0 {
		t.stride = 1
	}
	if t.count%t.stride != 0 {
		return
	}
	if len(t.samples) >= maxTimerSamples {
		kept := t.samples[:0]
		for i := 0; i < len(t.samples); i += 2 {
			kept = append(kept, t.samples[i])
		}
		t.samples = kept
		t.stride *= 2
		if t.count%t.stride != 0 {
			return
		}
	}
	t.samples = append(t.samples, d)
}

// Time runs fn and records how long it took.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// TimerStats is a point-in-time summary of a Timer.
type TimerStats struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Snapshot summarizes the observations so far. Percentiles are
// nearest-rank over the retained (possibly decimated) samples.
func (t *Timer) Snapshot() TimerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TimerStats{Count: t.count, Sum: t.sum, Max: t.max}
	if t.count > 0 {
		s.Mean = t.sum / time.Duration(t.count)
	}
	if len(t.samples) > 0 {
		sorted := make([]time.Duration, len(t.samples))
		copy(sorted, t.samples)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.P50 = percentile(sorted, 50)
		s.P95 = percentile(sorted, 95)
	}
	return s
}

// percentile returns the nearest-rank p-th percentile of sorted.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
