package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("insts")
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("insts").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name returned different counters")
	}
	r.Counter("b").Add(2)
	r.Counter("a").Inc()
	vals := r.CounterValues()
	if len(vals) != 2 || vals[0].Name != "a" || vals[0].Value != 1 || vals[1].Name != "b" || vals[1].Value != 2 {
		t.Errorf("snapshot = %+v", vals)
	}
}

func TestTimerPercentiles(t *testing.T) {
	var tm Timer
	// 1..100 ms in shuffled-ish order (deterministic permutation).
	for i := 0; i < 100; i++ {
		d := time.Duration((i*37)%100+1) * time.Millisecond
		tm.Observe(d)
	}
	s := tm.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if want := 5050 * time.Millisecond; s.Sum != want {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
	if want := 50500 * time.Microsecond; s.Mean != want {
		t.Errorf("mean = %v, want %v", s.Mean, want)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", s.P50)
	}
	if s.P95 != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", s.P95)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", s.Max)
	}
}

func TestTimerDecimation(t *testing.T) {
	var tm Timer
	const n = 3 * maxTimerSamples
	for i := 0; i < n; i++ {
		tm.Observe(time.Duration(i+1) * time.Microsecond)
	}
	s := tm.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	if s.Max != n*time.Microsecond {
		t.Errorf("max = %v, want %v", s.Max, n*time.Microsecond)
	}
	// Percentiles stay representative under decimation: p50 of a
	// uniform ramp should be near the midpoint.
	mid := float64(n) / 2
	if got := float64(s.P50.Microseconds()); got < mid*0.8 || got > mid*1.2 {
		t.Errorf("p50 = %v, want within 20%% of %vus", s.P50, mid)
	}
	if len(tm.samples) > maxTimerSamples {
		t.Errorf("retained %d samples, cap %d", len(tm.samples), maxTimerSamples)
	}
}

func TestTimerConcurrent(t *testing.T) {
	var tm Timer
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tm.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := tm.Snapshot(); s.Count != 4000 {
		t.Errorf("count = %d, want 4000", s.Count)
	}
}

func TestSpanNesting(t *testing.T) {
	root := StartSpan("run")
	a := root.StartChild("compile")
	a.End()
	b := root.StartChild("measure")
	b.StartChild("inner").End()
	b.End()
	root.End()

	tree := root.Tree()
	if tree.Name != "run" || len(tree.Children) != 2 {
		t.Fatalf("tree = %+v", tree)
	}
	if tree.Children[0].Name != "compile" || tree.Children[1].Name != "measure" {
		t.Errorf("children = %q, %q", tree.Children[0].Name, tree.Children[1].Name)
	}
	if len(tree.Children[1].Children) != 1 || tree.Children[1].Children[0].Name != "inner" {
		t.Errorf("nested child missing: %+v", tree.Children[1])
	}
	if tree.WallNS < tree.Children[0].WallNS {
		t.Errorf("root wall %d < child wall %d", tree.WallNS, tree.Children[0].WallNS)
	}
	// End is idempotent: a second End must not change the duration.
	d1 := root.End()
	time.Sleep(time.Millisecond)
	if d2 := root.End(); d2 != d1 {
		t.Errorf("second End changed duration: %v != %v", d2, d1)
	}
}

func TestSpanTime(t *testing.T) {
	root := StartSpan("run")
	ran := false
	root.Time("step", func() { ran = true })
	root.End()
	if !ran {
		t.Fatal("fn not run")
	}
	tree := root.Tree()
	if len(tree.Children) != 1 || tree.Children[0].Name != "step" {
		t.Errorf("tree = %+v", tree)
	}
}

// TestRunMetricsGolden pins the -metrics text rendering for a fixed
// document.
func TestRunMetricsGolden(t *testing.T) {
	m := &RunMetrics{
		Benchmark: "goban",
		Phases: PhaseTiming{
			Name: "run", WallNS: 1_500_000_000, Wall: "1.5s",
			Children: []PhaseTiming{
				{Name: "compile", WallNS: 200_000_000, Wall: "200ms"},
				{Name: "measure", WallNS: 1_200_000_000, Wall: "1.2s",
					Children: []PhaseTiming{{Name: "inner", WallNS: 100_000_000, Wall: "100ms"}}},
			},
		},
		Sim: SimCounters{
			Retired:       5_000_000,
			Loads:         1_000_000,
			Stores:        250_000,
			Branches:      800_000,
			BranchesTaken: 600_000,
			Syscalls:      12,
			ClassMix: []ClassCount{
				{Class: "alu", Count: 2_950_000},
				{Class: "load", Count: 1_000_000},
				{Class: "branch", Count: 800_000},
				{Class: "store", Count: 250_000},
			},
		},
		RetireRateMIPS:      4.17,
		ObserverSampleEvery: 64,
		Observers: []ObserverCost{
			{Name: "repetition", Samples: 78125, SampledNS: 6_250_000, EstimatedNS: 400_000_000, SharePct: 40},
			{Name: "taint", Samples: 78125, SampledNS: 9_375_000, EstimatedNS: 600_000_000, SharePct: 60},
		},
	}
	want := strings.Join([]string{
		"run metrics: goban",
		"phases:",
		"  run                    1.5s",
		"    compile              200ms",
		"    measure              1.2s",
		"      inner              100ms",
		"simulator:",
		"  instructions retired   5,000,000",
		"  retire rate            4.17 MIPS",
		"  loads                  1,000,000",
		"  stores                 250,000",
		"  branches               800,000 (600,000 taken)",
		"  syscalls               12",
		"  class mix              alu 59.0%, load 20.0%, branch 16.0%, store 5.0%",
		"observers (sampled 1/64, estimated):",
		"  repetition    40.0%  400ms",
		"  taint         60.0%  600ms",
		"",
	}, "\n")
	if got := m.FormatText(); got != want {
		t.Errorf("FormatText mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1.5s"},
		{200 * time.Millisecond, "200ms"},
		{1234567 * time.Nanosecond, "1.235ms"},
		{500 * time.Nanosecond, "500ns"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.now = func() time.Time { return time.Date(2026, 1, 2, 15, 4, 5, 0, time.UTC) }
	l.Debug("hidden")
	l.Info("compile done", "bench", "goban", "insts", 42)
	l.With("phase", "measure").Warn("slow observer", "name", "taint two")
	out := buf.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if want := "15:04:05.000 INFO  compile done bench=goban insts=42"; lines[0] != want {
		t.Errorf("line = %q, want %q", lines[0], want)
	}
	if !strings.Contains(lines[1], "WARN") || !strings.Contains(lines[1], "phase=measure") ||
		!strings.Contains(lines[1], `name="taint two"`) {
		t.Errorf("warn line = %q", lines[1])
	}
}

func TestLoggerNil(t *testing.T) {
	var l *Logger
	// Must not panic.
	l.Info("ignored")
	l.With("k", "v").Error("ignored")
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}

func TestGaugeAndTimerSnapshots(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inflight").Set(3)
	r.Gauge("active").Set(1)
	r.Timer("lat.b").Observe(2 * time.Millisecond)
	r.Timer("lat.a").Observe(5 * time.Millisecond)
	r.Timer("lat.a").Observe(7 * time.Millisecond)

	gs := r.GaugeValues()
	if len(gs) != 2 || gs[0].Name != "active" || gs[0].Value != 1 || gs[1].Name != "inflight" || gs[1].Value != 3 {
		t.Errorf("gauge snapshot = %+v", gs)
	}
	ts := r.TimerValues()
	if len(ts) != 2 || ts[0].Name != "lat.a" || ts[1].Name != "lat.b" {
		t.Fatalf("timer snapshot order = %+v", ts)
	}
	if ts[0].Count != 2 || ts[1].Count != 1 {
		t.Errorf("timer counts = %d, %d; want 2, 1", ts[0].Count, ts[1].Count)
	}
	if ts[0].Max < 7*time.Millisecond {
		t.Errorf("lat.a max = %v, want >= 7ms", ts[0].Max)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.Gauge("stored").Set(2)
	depth := int64(5)
	r.GaugeFunc("queue.depth", func() int64 { return depth })

	gs := r.GaugeValues()
	if len(gs) != 2 || gs[0].Name != "queue.depth" || gs[0].Value != 5 || gs[1].Name != "stored" {
		t.Fatalf("gauge snapshot = %+v", gs)
	}
	// Callback gauges are live: the next snapshot re-evaluates.
	depth = 9
	if gs := r.GaugeValues(); gs[0].Value != 9 {
		t.Errorf("callback gauge stale: %+v", gs)
	}
	// Re-registering replaces the callback.
	r.GaugeFunc("queue.depth", func() int64 { return -1 })
	if gs := r.GaugeValues(); gs[0].Value != -1 {
		t.Errorf("re-registration ignored: %+v", gs)
	}
}
