package obs

// Context propagation for traces and spans. The convention across the
// stack: the edge (HTTP handler, CLI run) mints a Trace and installs
// it with WithTrace; each layer that opens a phase calls StartSpanCtx,
// which parents the new span under the context's current span and
// installs the child for the layers below; leaf layers attach
// attributes to SpanFrom(ctx). A context with no trace degrades
// gracefully — StartSpanCtx starts a free-standing root span and
// SpanFrom returns nil (SetAttr on a nil Span is a no-op).

import "context"

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// WithTrace returns a context carrying t, with t's root as the current
// span.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	ctx = context.WithValue(ctx, traceKey, t)
	return context.WithValue(ctx, spanKey, t.Root())
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// TraceIDFrom returns the context's trace ID, or "".
func TraceIDFrom(ctx context.Context) string {
	if t := TraceFrom(ctx); t != nil {
		return t.ID()
	}
	return ""
}

// WithSpan returns a context with s as the current span.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey, s)
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpanCtx opens a span named name as a child of the context's
// current span (or as a free-standing root when the context carries
// none) and returns it along with a context carrying it as the new
// current span. The caller owns ending the span.
func StartSpanCtx(ctx context.Context, name string) (*Span, context.Context) {
	var s *Span
	if parent := SpanFrom(ctx); parent != nil {
		s = parent.StartChild(name)
	} else {
		s = StartSpan(name)
	}
	return s, WithSpan(ctx, s)
}
