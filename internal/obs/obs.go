// Package obs is the instrumentation substrate for the reproduction
// pipeline: counters, gauges, timers with percentile summaries, a
// hierarchical span API for phase timing, a leveled key=value logger,
// and the RunMetrics document that internal/core assembles after every
// run and cmd/instrep renders with -metrics.
//
// The package depends only on the standard library and is safe for
// concurrent use; every later performance PR is expected to report its
// numbers through it.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use and safe for concurrent increments.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready
// to use and safe for concurrent updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics. Lookups create the
// metric on first use, so call sites never need registration
// boilerplate. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	timers     map[string]*Timer
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		timers:     make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// CounterValues returns a name-sorted snapshot of every counter.
func (r *Registry) CounterValues() []NamedValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NamedValue, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, NamedValue{Name: name, Value: int64(c.Value())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GaugeFunc registers a callback gauge: f is evaluated at every
// GaugeValues snapshot, so live values (queue depths, open breakers)
// appear in /metrics without the owner pushing updates. Registering a
// name again replaces the callback.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
}

// GaugeValues returns a name-sorted snapshot of every gauge, stored
// and callback alike. Callbacks run outside the registry lock (they
// typically take their owner's lock).
func (r *Registry) GaugeValues() []NamedValue {
	r.mu.Lock()
	out := make([]NamedValue, 0, len(r.gauges)+len(r.gaugeFuncs))
	for name, g := range r.gauges {
		out = append(out, NamedValue{Name: name, Value: g.Value()})
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for name, f := range r.gaugeFuncs {
		funcs[name] = f
	}
	r.mu.Unlock()
	for name, f := range funcs {
		out = append(out, NamedValue{Name: name, Value: f()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TimerValues returns a name-sorted snapshot of every timer (count,
// sum, mean, p50/p95, max) — the request-latency section of the report
// server's /metrics document.
func (r *Registry) TimerValues() []NamedTimer {
	r.mu.Lock()
	timers := make(map[string]*Timer, len(r.timers))
	for name, t := range r.timers {
		timers[name] = t
	}
	r.mu.Unlock()
	out := make([]NamedTimer, 0, len(timers))
	for name, t := range timers {
		out = append(out, NamedTimer{Name: name, TimerStats: t.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedValue is one registry entry in a snapshot.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// NamedTimer is one timer entry in a registry snapshot.
type NamedTimer struct {
	Name string `json:"name"`
	TimerStats
}

// Health aggregates process-wide resilience counters incremented by
// the run path: aborted runs by cause, recovered panics, and truncated
// (partial) reports. cmd/instrep renders the nonzero ones after the
// run metrics (-metrics text).
var Health struct {
	Cancels         Counter // runs aborted by context cancellation (e.g. SIGINT)
	Timeouts        Counter // runs aborted by the per-workload timeout
	Watchdogs       Counter // runs aborted by the deadman watchdog
	PanicsRecovered Counter // panics converted to per-workload errors
	TruncatedRuns   Counter // partial reports emitted instead of discarded runs
}

// HealthCounters snapshots the nonzero health counters, name-sorted.
func HealthCounters() []NamedValue {
	all := []NamedValue{
		{Name: "panics_recovered", Value: int64(Health.PanicsRecovered.Value())},
		{Name: "runs_canceled", Value: int64(Health.Cancels.Value())},
		{Name: "runs_timed_out", Value: int64(Health.Timeouts.Value())},
		{Name: "runs_truncated", Value: int64(Health.TruncatedRuns.Value())},
		{Name: "watchdog_aborts", Value: int64(Health.Watchdogs.Value())},
	}
	out := all[:0]
	for _, v := range all {
		if v.Value != 0 {
			out = append(out, v)
		}
	}
	return out
}
