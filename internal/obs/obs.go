// Package obs is the instrumentation substrate for the reproduction
// pipeline: counters, gauges, timers with percentile summaries, a
// hierarchical span API for phase timing, a leveled key=value logger,
// and the RunMetrics document that internal/core assembles after every
// run and cmd/instrep renders with -metrics.
//
// The package depends only on the standard library and is safe for
// concurrent use; every later performance PR is expected to report its
// numbers through it.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use and safe for concurrent increments.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter (test isolation and Registry.Reset; the
// serving paths never reset).
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a metric that can go up and down. The zero value is ready
// to use and safe for concurrent updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics. Lookups create the
// metric on first use, so call sites never need registration
// boilerplate. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	timers     map[string]*Timer
	histograms map[string]*Histogram
	health     HealthCounters
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.initLocked()
	return r
}

// initLocked (re)creates the metric maps. Caller holds r.mu except
// during construction.
func (r *Registry) initLocked() {
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.gaugeFuncs = make(map[string]func() int64)
	r.timers = make(map[string]*Timer)
	r.histograms = make(map[string]*Histogram)
}

// Reset drops every metric and zeroes the health counters, returning
// the registry to its freshly constructed state. Tests use it to keep
// successive server instances (and the process-wide Default registry)
// from leaking counts into each other.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.initLocked()
	r.mu.Unlock()
	r.health.Reset()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named fixed-bucket histogram, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// HistogramValues returns a name-sorted snapshot of every histogram.
func (r *Registry) HistogramValues() []NamedHistogram {
	r.mu.Lock()
	hs := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hs[name] = h
	}
	r.mu.Unlock()
	out := make([]NamedHistogram, 0, len(hs))
	for name, h := range hs {
		out = append(out, NamedHistogram{Name: name, HistogramStats: h.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterValues returns a name-sorted snapshot of every counter.
func (r *Registry) CounterValues() []NamedValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NamedValue, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, NamedValue{Name: name, Value: int64(c.Value())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GaugeFunc registers a callback gauge: f is evaluated at every
// GaugeValues snapshot, so live values (queue depths, open breakers)
// appear in /metrics without the owner pushing updates. Registering a
// name again replaces the callback.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
}

// GaugeValues returns a name-sorted snapshot of every gauge, stored
// and callback alike. Callbacks run outside the registry lock (they
// typically take their owner's lock).
func (r *Registry) GaugeValues() []NamedValue {
	r.mu.Lock()
	out := make([]NamedValue, 0, len(r.gauges)+len(r.gaugeFuncs))
	for name, g := range r.gauges {
		out = append(out, NamedValue{Name: name, Value: g.Value()})
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for name, f := range r.gaugeFuncs {
		funcs[name] = f
	}
	r.mu.Unlock()
	for name, f := range funcs {
		out = append(out, NamedValue{Name: name, Value: f()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TimerValues returns a name-sorted snapshot of every timer (count,
// sum, mean, p50/p95, max) — the request-latency section of the report
// server's /metrics document.
func (r *Registry) TimerValues() []NamedTimer {
	r.mu.Lock()
	timers := make(map[string]*Timer, len(r.timers))
	for name, t := range r.timers {
		timers[name] = t
	}
	r.mu.Unlock()
	out := make([]NamedTimer, 0, len(timers))
	for name, t := range timers {
		out = append(out, NamedTimer{Name: name, TimerStats: t.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedValue is one registry entry in a snapshot.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// NamedTimer is one timer entry in a registry snapshot.
type NamedTimer struct {
	Name string `json:"name"`
	TimerStats
}

// NamedHistogram is one histogram entry in a registry snapshot.
type NamedHistogram struct {
	Name string `json:"name"`
	HistogramStats
}

// HealthCounters aggregates a run path's resilience counters: aborted
// runs by cause, recovered panics, and truncated (partial) reports.
// Every Registry owns one (Registry.Health), so a server instance's
// counts are scoped to its registry instead of leaking across daemon
// instances or tests; the package-level Health is the Default
// registry's set, which the CLI run path uses.
type HealthCounters struct {
	Cancels         Counter // runs aborted by context cancellation (e.g. SIGINT)
	Timeouts        Counter // runs aborted by the per-workload timeout
	Watchdogs       Counter // runs aborted by the deadman watchdog
	PanicsRecovered Counter // panics converted to per-workload errors
	TruncatedRuns   Counter // partial reports emitted instead of discarded runs
}

// Reset zeroes every health counter.
func (h *HealthCounters) Reset() {
	h.Cancels.Reset()
	h.Timeouts.Reset()
	h.Watchdogs.Reset()
	h.PanicsRecovered.Reset()
	h.TruncatedRuns.Reset()
}

// Values snapshots the nonzero health counters, name-sorted.
func (h *HealthCounters) Values() []NamedValue {
	all := []NamedValue{
		{Name: "panics_recovered", Value: int64(h.PanicsRecovered.Value())},
		{Name: "runs_canceled", Value: int64(h.Cancels.Value())},
		{Name: "runs_timed_out", Value: int64(h.Timeouts.Value())},
		{Name: "runs_truncated", Value: int64(h.TruncatedRuns.Value())},
		{Name: "watchdog_aborts", Value: int64(h.Watchdogs.Value())},
	}
	out := all[:0]
	for _, v := range all {
		if v.Value != 0 {
			out = append(out, v)
		}
	}
	return out
}

// Health returns the registry's resilience counter set.
func (r *Registry) Health() *HealthCounters { return &r.health }

// Default is the process-wide registry: the destination for run-path
// health counters when no registry is injected (the CLI). Servers
// construct their own registries so successive instances and tests
// stay isolated; tests touching Default should Reset it.
var Default = NewRegistry()

// Health is the Default registry's resilience counters — the shim that
// keeps the CLI run path's accounting working without explicit
// registry plumbing.
var Health = Default.Health()
