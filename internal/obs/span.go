package obs

import (
	"sync"
	"time"
)

// Span measures the wall time of one phase of work. Spans nest:
// StartChild opens a sub-phase whose duration is reported under its
// parent, giving the hierarchical "where did the time go" breakdown
// that RunMetrics serializes. Spans are safe for concurrent use,
// though a single phase is normally driven by one goroutine.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	offset   time.Duration // start relative to the parent span (0 for roots)
	dur      time.Duration
	ended    bool
	children []*Span
	attrs    map[string]any
}

// StartSpan begins a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Name returns the span's label.
func (s *Span) Name() string { return s.name }

// StartChild begins a sub-span recorded under s.
func (s *Span) StartChild(name string) *Span {
	c := StartSpan(name)
	s.mu.Lock()
	c.offset = c.start.Sub(s.start)
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr attaches (or replaces) a key/value attribute on the span.
// Attributes carry request-scoped facts — workload, cache tier, queue
// wait, retire counts — into the serialized span tree. Calling SetAttr
// on a nil span is a no-op, so instrumentation sites need no span-
// present check.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Attr returns the named attribute's value, or nil.
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Time runs fn inside a child span and returns its duration.
func (s *Span) Time(name string, fn func()) time.Duration {
	c := s.StartChild(name)
	fn()
	return c.End()
}

// End stops the span and returns its duration. Ending twice is safe;
// the first End wins.
func (s *Span) End() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	return s.dur
}

// Duration returns the recorded duration, or the running elapsed time
// if the span has not ended.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Tree snapshots the span hierarchy as a serializable PhaseTiming.
func (s *Span) Tree() PhaseTiming {
	s.mu.Lock()
	pt := PhaseTiming{Name: s.name, StartNS: s.offset.Nanoseconds()}
	if s.ended {
		pt.WallNS = s.dur.Nanoseconds()
	} else {
		pt.WallNS = time.Since(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		pt.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			pt.Attrs[k] = v
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	pt.Wall = FormatDuration(time.Duration(pt.WallNS))
	for _, c := range children {
		pt.Children = append(pt.Children, c.Tree())
	}
	return pt
}

// PhaseTiming is the serialized form of a span subtree. StartNS is the
// span's start relative to its parent, so a child's [StartNS,
// StartNS+WallNS] interval nests inside its parent's duration and
// sibling durations can be summed against the parent's to find
// unattributed time.
type PhaseTiming struct {
	Name     string         `json:"name"`
	StartNS  int64          `json:"start_ns,omitempty"` // offset from parent start
	WallNS   int64          `json:"wall_ns"`
	Wall     string         `json:"wall"` // human-readable WallNS
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []PhaseTiming  `json:"children,omitempty"`
}

// Find returns the first subtree named name in pre-order, or nil —
// the lookup trace tests and tooling use to assert a span's presence.
func (p *PhaseTiming) Find(name string) *PhaseTiming {
	if p.Name == name {
		return p
	}
	for i := range p.Children {
		if f := p.Children[i].Find(name); f != nil {
			return f
		}
	}
	return nil
}

// FormatDuration renders a duration rounded to a readable precision
// (three or so significant digits) for metrics output.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(time.Nanosecond).String()
	default:
		return d.String()
	}
}
