package obs

import (
	"sync"
	"time"
)

// Span measures the wall time of one phase of work. Spans nest:
// StartChild opens a sub-phase whose duration is reported under its
// parent, giving the hierarchical "where did the time go" breakdown
// that RunMetrics serializes. Spans are safe for concurrent use,
// though a single phase is normally driven by one goroutine.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	children []*Span
}

// StartSpan begins a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Name returns the span's label.
func (s *Span) Name() string { return s.name }

// StartChild begins a sub-span recorded under s.
func (s *Span) StartChild(name string) *Span {
	c := StartSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Time runs fn inside a child span and returns its duration.
func (s *Span) Time(name string, fn func()) time.Duration {
	c := s.StartChild(name)
	fn()
	return c.End()
}

// End stops the span and returns its duration. Ending twice is safe;
// the first End wins.
func (s *Span) End() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	return s.dur
}

// Duration returns the recorded duration, or the running elapsed time
// if the span has not ended.
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Tree snapshots the span hierarchy as a serializable PhaseTiming.
func (s *Span) Tree() PhaseTiming {
	s.mu.Lock()
	pt := PhaseTiming{Name: s.name}
	if s.ended {
		pt.WallNS = s.dur.Nanoseconds()
	} else {
		pt.WallNS = time.Since(s.start).Nanoseconds()
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	pt.Wall = FormatDuration(time.Duration(pt.WallNS))
	for _, c := range children {
		pt.Children = append(pt.Children, c.Tree())
	}
	return pt
}

// PhaseTiming is the serialized form of a span subtree.
type PhaseTiming struct {
	Name     string        `json:"name"`
	WallNS   int64         `json:"wall_ns"`
	Wall     string        `json:"wall"` // human-readable WallNS
	Children []PhaseTiming `json:"children,omitempty"`
}

// FormatDuration renders a duration rounded to a readable precision
// (three or so significant digits) for metrics output.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(time.Nanosecond).String()
	default:
		return d.String()
	}
}
