// Package reportserver serves precomputed repetition measurements
// over HTTP: canonical report JSON, rendered tables, and workload
// metadata, backed by the content-addressed result cache so each
// distinct (workload, config) pair is simulated at most once and then
// served from memory or disk. See DESIGN.md §12.
//
// The server is overload-hardened (DESIGN.md §13): cold simulations
// pass through a bounded admission gate with a short FIFO queue
// (excess load is shed with 503 + Retry-After), workloads that fail
// repeatedly trip a per-workload circuit breaker and fail fast, and —
// when serve-stale is enabled — shed or failed requests are answered
// with the last known-good report under an X-Instrep-Stale header
// instead of an error. /healthz exposes a readiness state machine
// (starting → ready → degraded → draining) so load balancers see
// degradation before collapse.
//
// Endpoints:
//
//	GET /v1/workloads          workload metadata (JSON)
//	GET /v1/report/{workload}  canonical report JSON for one workload
//	GET /v1/tables/{workload}  rendered tables ("all" = every workload;
//	                           ?experiment=table1,fig4 selects a subset)
//	POST /v1/jobs              submit an async measurement job (with
//	                           OpenJobs; idempotent by fingerprint)
//	GET /v1/jobs/{id}          job state, retries, resumes, checkpoint
//	GET /v1/jobs/{id}/report   a done job's canonical report bytes
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET /debug/jobs            every journaled job plus job_* counters
//	GET /healthz               readiness state machine (JSON)
//	GET /metrics               server/cache/overload/health counters and
//	                           request latency histograms (JSON by
//	                           default; Prometheus text exposition when
//	                           the Accept header asks for text/plain or
//	                           openmetrics, or with ?format=prometheus)
//	GET /debug/traces          recent request traces (newest first;
//	                           slow/shed/errored requests always kept)
//	GET /debug/traces/{id}     one trace's span tree with attributes
//	GET /debug/runs            in-flight simulations: workload, phase,
//	                           retired instructions, live retire rate
//
// Every /v1 request carries an X-Instrep-Trace response header naming
// the trace recorded for it (DESIGN.md §14).
package reportserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/resultcache"
)

// DefaultRequestTimeout bounds one request's simulation work when
// Config.RequestTimeout is zero. A cold default-window workload takes
// a couple of seconds, so this is generous; cache hits are instant.
const DefaultRequestTimeout = 2 * time.Minute

// Admission and degradation defaults (Config fields value 0).
const (
	// DefaultQueueDepth is the admission wait-queue bound: deep enough
	// for one cold full-workload sweep behind the running simulations,
	// short enough that queued requests never wait unreasonably.
	DefaultQueueDepth = 8
	// DefaultBreakerThreshold is the consecutive-failure count that
	// opens a workload's circuit breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long an open breaker rejects
	// before admitting a half-open probe.
	DefaultBreakerCooldown = 30 * time.Second
	// DefaultRetryAfter is the back-off hint on shed responses.
	DefaultRetryAfter = 2 * time.Second
	// DefaultSlowTraceThreshold is the request duration past which a
	// trace is pinned to the trace store's always-keep class. A cache
	// hit is microseconds and a cold quick-window simulation tens of
	// milliseconds, so a second means a cold default-window sweep or a
	// queue wait worth looking at.
	DefaultSlowTraceThreshold = time.Second
)

// statusClientClosedRequest is the nonstandard 499 status used when
// the client disconnected before the response.
const statusClientClosedRequest = 499

// shutdownGrace is how long Serve waits for in-flight requests after
// its context is canceled. Request contexts descend from the serve
// context, so cancellation aborts in-flight simulations (the PR 3
// machinery) and drains well inside the grace period.
const shutdownGrace = 10 * time.Second

// Config configures a Server.
type Config struct {
	// RunConfig is the measurement configuration every request is
	// served with (the server's identity: one config, eight workloads,
	// one cache key each).
	RunConfig repro.Config

	// Cache is the result cache (nil = a fresh memory-only cache).
	Cache *resultcache.Cache

	// Checkpoints, when set, makes every simulation crash-resumable:
	// snapshots land in the store keyed by result-cache fingerprint,
	// interrupted runs resume at the next request for the same key,
	// and the store's counters join /metrics under checkpoint_. The
	// CLI wires `serve -checkpoint-dir` here.
	Checkpoints *checkpoint.Store

	// RequestTimeout bounds each request including any simulation it
	// triggers (0 = DefaultRequestTimeout, negative = none).
	RequestTimeout time.Duration

	// MaxConcurrentSims bounds simulations in flight across all
	// requests (0 = GOMAXPROCS, negative = unbounded).
	MaxConcurrentSims int

	// QueueDepth bounds cold requests waiting for a simulation slot
	// before they are shed (0 = DefaultQueueDepth, negative = no
	// queue). Ignored when MaxConcurrentSims is negative.
	QueueDepth int

	// BreakerThreshold is the consecutive simulation failures that
	// open a workload's circuit breaker (0 = DefaultBreakerThreshold,
	// negative = breakers disabled).
	BreakerThreshold int

	// BreakerCooldown is how long an open breaker rejects before a
	// half-open probe (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration

	// RetryAfter is the Retry-After hint attached to shed responses
	// (0 = DefaultRetryAfter).
	RetryAfter time.Duration

	// ServeStale serves the last known-good report (with an
	// X-Instrep-Stale: true header) instead of an error when a
	// request is shed, breaker-rejected, or its simulation fails.
	ServeStale bool

	// TraceStoreSize bounds how many finished request traces are
	// retained per retention class for /debug/traces (0 =
	// obs.DefaultTraceStoreCap).
	TraceStoreSize int

	// SlowTraceThreshold pins traces of requests at least this slow to
	// the always-keep class (0 = DefaultSlowTraceThreshold, negative =
	// never pin by latency). Shed, errored, and disconnected requests
	// are always pinned regardless.
	SlowTraceThreshold time.Duration

	// Log receives request-level log lines (nil = silent).
	Log *obs.Logger

	// AccessLog, when set, receives one structured line per request
	// (trace ID, method, path, status, outcome, cache tier, queue wait,
	// latency). The CLI wires a JSON logger here for -access-log.
	AccessLog *obs.Logger

	// Run overrides the per-workload compute function (nil =
	// repro.RunWorkload). Injectable for tests.
	Run func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error)
}

// Server is the report-serving daemon.
type Server struct {
	cfg       Config
	runner    *repro.Runner
	gate      *overload.Gate
	breakers  *overload.BreakerSet
	names     map[string]bool
	reg       *obs.Registry // server_* counters, gauges, latency histograms
	log       *obs.Logger
	accessLog *obs.Logger
	traces    *obs.TraceStore
	runs      *repro.RunRegistry
	slowTrace time.Duration
	jobs      *jobs.Manager // async job tier (nil until OpenJobs)

	state atomic.Int32 // one of the state* constants

	// staleMu guards lastGood: the most recent complete canonical
	// report bytes per workload, retained independently of cache
	// eviction so degradation always has something to serve.
	staleMu  sync.Mutex
	lastGood map[string][]byte
}

// Base lifecycle states. "degraded" is computed, not stored: the
// server reports it while ready with any breaker open.
const (
	stateStarting int32 = iota
	stateReady
	stateDraining
)

// New builds a Server from cfg. The server starts in the "starting"
// readiness state; Serve/ListenAndServe mark it ready once the
// listener is up (embedders driving Handler directly can call
// MarkReady themselves).
func New(cfg Config) *Server {
	if cfg.Cache == nil {
		cfg.Cache, _ = resultcache.New(0, "") // memory-only New cannot fail
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	slowTrace := cfg.SlowTraceThreshold
	if slowTrace == 0 {
		slowTrace = DefaultSlowTraceThreshold
	}
	reg := obs.NewRegistry()
	runs := repro.NewRunRegistry()
	// Scope the run path's accounting to this server: truncations and
	// recovered panics land in this registry's health counters, and
	// in-flight runs register for /debug/runs. Explicit settings win.
	if cfg.RunConfig.Health == nil {
		cfg.RunConfig.Health = reg.Health()
	}
	if cfg.RunConfig.Runs == nil {
		cfg.RunConfig.Runs = runs
	}
	s := &Server{
		cfg:       cfg,
		names:     make(map[string]bool),
		reg:       reg,
		log:       cfg.Log,
		accessLog: cfg.AccessLog,
		traces:    obs.NewTraceStore(cfg.TraceStoreSize),
		runs:      runs,
		slowTrace: slowTrace,
		lastGood:  make(map[string][]byte),
	}
	if cfg.MaxConcurrentSims >= 0 {
		capacity := cfg.MaxConcurrentSims
		if capacity == 0 {
			capacity = runtime.GOMAXPROCS(0)
		}
		depth := cfg.QueueDepth
		if depth == 0 {
			depth = DefaultQueueDepth
		}
		s.gate = overload.NewGate(capacity, depth, cfg.RetryAfter)
		s.reg.GaugeFunc("server_queue_depth", s.gate.Queued)
		s.reg.GaugeFunc("server_sims_inflight", s.gate.InFlight)
	}
	if cfg.BreakerThreshold >= 0 {
		threshold := cfg.BreakerThreshold
		if threshold == 0 {
			threshold = DefaultBreakerThreshold
		}
		cooldown := cfg.BreakerCooldown
		if cooldown == 0 {
			cooldown = DefaultBreakerCooldown
		}
		s.breakers = overload.NewBreakerSet(threshold, cooldown, nil)
		s.reg.GaugeFunc("server_breakers_open", s.breakers.OpenCount)
	}
	s.runner = &repro.Runner{Cache: cfg.Cache, Gate: s.gate, Breakers: s.breakers, Run: cfg.Run}
	if cfg.Checkpoints != nil {
		s.runner.Checkpoint = &repro.CheckpointPolicy{Store: cfg.Checkpoints, Resume: true}
	}
	for _, name := range repro.Workloads() {
		s.names[name] = true
	}
	return s
}

// MarkReady moves a starting server to ready. Serve/ListenAndServe
// call it once the listener is accepting; embedders that mount
// Handler on their own server call it when they are.
func (s *Server) MarkReady() {
	s.state.CompareAndSwap(stateStarting, stateReady)
}

// State returns the readiness state ("starting", "ready", "degraded",
// or "draining"). Degraded means the server is still answering — from
// cache, stale copies, or fresh simulations of healthy workloads —
// but at least one workload's circuit breaker is open.
func (s *Server) State() string {
	switch s.state.Load() {
	case stateDraining:
		return "draining"
	case stateStarting:
		return "starting"
	default:
		if s.breakers != nil && s.breakers.OpenCount() > 0 {
			return "degraded"
		}
		return "ready"
	}
}

// Handler returns the server's route table. The /v1 endpoints are
// traced (each request mints a trace retained in the trace store);
// health, metrics, and debug endpoints are counted but not traced, so
// scrapes and introspection never displace request traces.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", false, s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", false, s.handleMetrics))
	mux.HandleFunc("GET /v1/workloads", s.instrument("workloads", true, s.handleWorkloads))
	mux.HandleFunc("GET /v1/report/{workload}", s.instrument("report", true, s.handleReport))
	mux.HandleFunc("GET /v1/tables/{workload}", s.instrument("tables", true, s.handleTables))
	mux.HandleFunc("GET /debug/traces", s.instrument("traces", false, s.handleTraces))
	mux.HandleFunc("GET /debug/traces/{id}", s.instrument("trace", false, s.handleTrace))
	mux.HandleFunc("GET /debug/runs", s.instrument("runs", false, s.handleRuns))
	if s.jobs != nil {
		s.jobRoutes(mux)
	}
	return mux
}

// ListenAndServe serves on addr until ctx is canceled, then shuts
// down gracefully (in-flight simulations are canceled through the
// request contexts and their requests drain with an error response).
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}

// Serve is ListenAndServe on an existing listener.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Request contexts descend from ctx so a daemon-level cancel
		// (SIGINT) aborts in-flight simulations immediately.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	s.MarkReady()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.state.Store(stateDraining)
		shctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		err := srv.Shutdown(shctx)
		<-errc // always http.ErrServerClosed after Shutdown
		if s.jobs != nil {
			// Graceful drain of the job tier: in-flight jobs are
			// aborted and journaled as interrupted so the next process
			// resumes them from their last checkpoint.
			s.jobs.Drain()
		}
		if s.log != nil {
			s.log.Info("server stopped", "cause", context.Cause(ctx))
		}
		return err
	}
}

// statusWriter captures the response status so instrument can route
// metrics by outcome.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with a request counter, outcome-routed
// latency histograms, the per-request timeout, and — for traced
// endpoints — the request trace: minted at this edge, announced via
// the X-Instrep-Trace response header, carried down the run path by
// the request context, and stored for /debug/traces when the request
// finishes. Latency is recorded into per-endpoint histograms only for
// ordinary responses: shed/drain 503s land in server_latency_shed and
// client disconnects (499) in server_latency_disconnect plus their own
// counter, so the distributions used for capacity planning reflect
// work actually served.
func (s *Server) instrument(name string, traced bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("server_requests_" + name).Inc()
		timeout := s.cfg.RequestTimeout
		if timeout == 0 {
			timeout = DefaultRequestTimeout
		}
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		var tr *obs.Trace
		if traced {
			tr = obs.NewTrace(r.Method + " " + r.URL.Path)
			r = r.WithContext(obs.WithTrace(r.Context(), tr))
			w.Header().Set("X-Instrep-Trace", tr.ID())
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		outcome := outcomeFor(sw.status)
		switch sw.status {
		case statusClientClosedRequest:
			s.reg.Counter("server_requests_client_disconnect").Inc()
			s.reg.Histogram("server_latency_disconnect").Observe(d)
		case http.StatusServiceUnavailable:
			s.reg.Histogram("server_latency_shed").Observe(d)
		default:
			s.reg.Histogram("server_latency_" + name).Observe(d)
		}
		if tr != nil {
			root := tr.Root()
			root.SetAttr("status", sw.status)
			tr.SetOutcome(outcome)
			tr.End()
			// Always-keep: anything that did not end 2xx, plus slow
			// requests, survives floods of healthy traffic.
			keep := outcome != "ok" || (s.slowTrace > 0 && d >= s.slowTrace)
			s.traces.Add(tr, keep)
		}
		if s.log != nil {
			s.log.Debug("request", "path", r.URL.Path, "status", sw.status, "ms", d.Milliseconds())
		}
		if s.accessLog != nil {
			kv := []any{
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"outcome", outcome,
				"latency_ns", d.Nanoseconds(),
			}
			if tr != nil {
				kv = append(kv, "trace", tr.ID())
				if tier := tr.Root().Attr("cache_tier"); tier != nil {
					kv = append(kv, "cache_tier", tier)
				}
				if wait := tr.Root().Attr("queue_wait_ns"); wait != nil {
					kv = append(kv, "queue_wait_ns", wait)
				}
			}
			s.accessLog.Info("request", kv...)
		}
	}
}

// outcomeFor classifies a response status for trace retention and the
// access log.
func outcomeFor(status int) string {
	switch {
	case status == statusClientClosedRequest:
		return "disconnect"
	case status == http.StatusServiceUnavailable:
		return "shed"
	case status == http.StatusGatewayTimeout:
		return "timeout"
	case status >= 400:
		return "error"
	default:
		return "ok"
	}
}

// classify maps an error to its HTTP status and, for overload
// rejections, the Retry-After hint.
func classify(err error, fallback int) (status int, retryAfter time.Duration) {
	var shed *overload.ShedError
	var open *overload.BreakerOpenError
	switch {
	case errors.As(err, &shed):
		return http.StatusServiceUnavailable, shed.RetryAfter
	case errors.As(err, &open):
		return http.StatusServiceUnavailable, open.RetryAfter
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest, 0
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, 0
	default:
		return fallback, 0
	}
}

// fail writes an error response, classifying context ends (client
// cancel → 499, deadline → 504) and overload rejections (shed or open
// breaker → 503 with Retry-After).
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error, status int) {
	status, retryAfter := classify(err, status)
	if status == http.StatusServiceUnavailable {
		var open *overload.BreakerOpenError
		if errors.As(err, &open) {
			s.reg.Counter("server_breaker_rejected").Inc()
		} else {
			s.reg.Counter("server_shed").Inc()
		}
		if retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter.Seconds()))))
		}
	}
	s.reg.Counter("server_errors").Inc()
	if s.log != nil {
		s.log.Warn("request failed", "path", r.URL.Path, "status", status, "err", err)
	}
	http.Error(w, err.Error(), status)
}

// writeJSON marshals v as indented JSON.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// healthDoc is the /healthz response document.
type healthDoc struct {
	State        string   `json:"state"`
	OpenBreakers []string `json:"open_breakers,omitempty"`
	QueueDepth   int64    `json:"queue_depth"`
	SimsInflight int64    `json:"sims_inflight"`
	JobsQueued   *int64   `json:"jobs_queued,omitempty"`  // job tier only
	JobsRunning  *int64   `json:"jobs_running,omitempty"` // job tier only
}

// handleHealthz serves the readiness state machine: 200 while the
// server can answer (ready or degraded), 503 while it cannot be
// trusted with new traffic (starting or draining). Load balancers
// watching the body see "degraded" — and which workloads tripped it —
// before the process is in real trouble.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := healthDoc{State: s.State()}
	if s.breakers != nil {
		doc.OpenBreakers = s.breakers.Open()
	}
	if s.gate != nil {
		doc.QueueDepth = s.gate.Queued()
		doc.SimsInflight = s.gate.InFlight()
	}
	if s.jobs != nil {
		var queued, running int64
		for _, v := range s.jobs.StatValues() {
			switch v.Name {
			case "queued":
				queued = v.Value
			case "running":
				running = v.Value
			}
		}
		doc.JobsQueued = &queued
		doc.JobsRunning = &running
	}
	if doc.State == "starting" || doc.State == "draining" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
		return
	}
	s.writeJSON(w, doc)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, repro.WorkloadInfos())
}

// rememberGood retains a complete report's canonical bytes as the
// workload's stale fallback. Truncated partials never qualify.
func (s *Server) rememberGood(rep *repro.Report) {
	if rep == nil || rep.Truncated {
		return
	}
	data, err := repro.CanonicalReportJSON(rep)
	if err != nil {
		return
	}
	s.staleMu.Lock()
	s.lastGood[rep.Benchmark] = data
	s.staleMu.Unlock()
}

// staleFor returns the workload's last known-good canonical bytes.
func (s *Server) staleFor(name string) ([]byte, bool) {
	s.staleMu.Lock()
	defer s.staleMu.Unlock()
	data, ok := s.lastGood[name]
	return data, ok
}

// serveStale answers a failed report request from the stale store
// when degradation allows it. It reports whether it wrote a response.
func (s *Server) serveStale(w http.ResponseWriter, r *http.Request, name string, cause error) bool {
	if !s.cfg.ServeStale || errors.Is(cause, context.Canceled) {
		// No stale response for a client that already hung up.
		return false
	}
	data, ok := s.staleFor(name)
	if !ok {
		return false
	}
	s.reg.Counter("server_stale_served").Inc()
	if s.log != nil {
		s.log.Warn("serving stale", "workload", name, "cause", cause)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Instrep-Stale", "true")
	w.Write(data)
	return true
}

// reports resolves the {workload} path element ("all" or one name)
// into reports via the cache-backed runner.
func (s *Server) reports(r *http.Request) ([]*repro.Report, error) {
	name := r.PathValue("workload")
	if name == "all" {
		reports, err := s.runner.RunAll(r.Context(), s.cfg.RunConfig)
		for _, rep := range reports {
			s.rememberGood(rep)
		}
		return reports, err
	}
	if !s.names[name] {
		return nil, fmt.Errorf("unknown workload %q (have %s, or \"all\")",
			name, strings.Join(repro.Workloads(), ", "))
	}
	rep, err := s.runner.RunWorkload(r.Context(), name, s.cfg.RunConfig)
	if err != nil {
		return nil, err
	}
	s.rememberGood(rep)
	return []*repro.Report{rep}, nil
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("workload")
	if !s.names[name] {
		s.fail(w, r, fmt.Errorf("unknown workload %q (have %s)",
			name, strings.Join(repro.Workloads(), ", ")), http.StatusNotFound)
		return
	}
	rep, err := s.runner.RunWorkload(r.Context(), name, s.cfg.RunConfig)
	if err != nil {
		// Degradation ladder: a shed, breaker-rejected, or failed
		// request is answered with the last known-good report when
		// serve-stale allows, and with a classified error otherwise.
		if s.serveStale(w, r, name, err) {
			return
		}
		s.fail(w, r, err, http.StatusInternalServerError)
		return
	}
	// Serve the canonical form: byte-identical whether this request
	// simulated or hit the cache (pinned by the golden corpus test).
	data, err := repro.CanonicalReportJSON(rep)
	if err != nil {
		s.fail(w, r, err, http.StatusInternalServerError)
		return
	}
	s.rememberGood(rep)
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	// Validate the experiment selection before running anything.
	var experiments []string
	if q := r.URL.Query().Get("experiment"); q != "" && q != "all" {
		valid := make(map[string]bool)
		for _, e := range repro.Experiments() {
			valid[e] = true
		}
		for _, e := range strings.Split(q, ",") {
			e = strings.TrimSpace(e)
			if !valid[e] {
				s.fail(w, r, fmt.Errorf("unknown experiment %q (have %s, or \"all\")",
					e, strings.Join(repro.Experiments(), ", ")), http.StatusBadRequest)
				return
			}
			experiments = append(experiments, e)
		}
	}
	reports, err := s.reports(r)
	if err != nil && len(reports) == 0 {
		status := http.StatusInternalServerError
		if strings.Contains(err.Error(), "unknown workload") {
			status = http.StatusNotFound
		}
		s.fail(w, r, err, status)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err != nil {
		// Fail-soft like the CLI: render the surviving workloads and
		// flag the partial result.
		w.Header().Set("X-Instrep-Partial", "true")
		fmt.Fprintf(w, "# partial result: %v\n\n", err)
	}
	if len(experiments) == 0 {
		fmt.Fprint(w, repro.FormatAll(reports))
		return
	}
	for _, e := range experiments {
		out, ferr := repro.Format(e, reports)
		if ferr != nil {
			fmt.Fprintf(w, "# %s: %v\n", e, ferr)
			continue
		}
		fmt.Fprintln(w, out)
	}
}

// metricsDoc is the /metrics JSON response document.
type metricsDoc struct {
	State        string               `json:"state"`
	Requests     []obs.NamedValue     `json:"requests"`
	Gauges       []obs.NamedValue     `json:"gauges"`
	Latency      []obs.NamedHistogram `json:"latency"`
	Cache        []obs.NamedValue     `json:"cache"`
	Checkpoints  []obs.NamedValue     `json:"checkpoints,omitempty"`
	Jobs         []obs.NamedValue     `json:"jobs,omitempty"`
	Health       []obs.NamedValue     `json:"health"`
	OpenBreakers []string             `json:"open_breakers,omitempty"`
	Workloads    int                  `json:"workloads"`
}

// wantsPrometheus reports whether the request negotiated the
// Prometheus text exposition: an explicit ?format=prometheus, or an
// Accept header asking for text/plain or an OpenMetrics media type
// (what a Prometheus scraper sends). The JSON document stays the
// default so existing clients are untouched.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		extras := []obs.ExtraSection{
			{Prefix: "cache_", Gauge: true, Values: s.cfg.Cache.StatValues()},
			{Prefix: "health_", Values: s.reg.Health().Values()},
		}
		if s.cfg.Checkpoints != nil {
			extras = append(extras, obs.ExtraSection{
				Prefix: "checkpoint_", Gauge: true, Values: s.cfg.Checkpoints.StatValues(),
			})
		}
		if s.jobs != nil {
			extras = append(extras, obs.ExtraSection{
				Prefix: "job_", Gauge: true, Values: s.jobs.StatValues(),
			})
		}
		s.reg.WritePrometheus(w, extras...)
		return
	}
	doc := metricsDoc{
		State:     s.State(),
		Requests:  s.reg.CounterValues(),
		Gauges:    s.reg.GaugeValues(),
		Latency:   s.reg.HistogramValues(),
		Cache:     s.cfg.Cache.StatValues(),
		Health:    s.reg.Health().Values(),
		Workloads: len(s.names),
	}
	if s.cfg.Checkpoints != nil {
		doc.Checkpoints = s.cfg.Checkpoints.StatValues()
	}
	if s.jobs != nil {
		doc.Jobs = s.jobs.StatValues()
	}
	if s.breakers != nil {
		doc.OpenBreakers = s.breakers.Open()
	}
	s.writeJSON(w, doc)
}

// tracesDoc is the /debug/traces response document.
type tracesDoc struct {
	Count  int                `json:"count"`
	Traces []obs.TraceSummary `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	list := s.traces.List()
	s.writeJSON(w, tracesDoc{Count: len(list), Traces: list})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.traces.Get(id)
	if !ok {
		s.fail(w, r, fmt.Errorf("unknown trace %q", id), http.StatusNotFound)
		return
	}
	s.writeJSON(w, t.Doc())
}

// runsDoc is the /debug/runs response document.
type runsDoc struct {
	Count int             `json:"count"`
	Runs  []repro.RunInfo `json:"runs"`
}

// handleRuns lists the simulations in flight right now: workload,
// phase, retired instructions, and a phase-relative retire rate — the
// live view behind "is the server wedged or just busy".
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	snap := s.runs.Snapshot()
	s.writeJSON(w, runsDoc{Count: len(snap), Runs: snap})
}
