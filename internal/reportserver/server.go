// Package reportserver serves precomputed repetition measurements
// over HTTP: canonical report JSON, rendered tables, and workload
// metadata, backed by the content-addressed result cache so each
// distinct (workload, config) pair is simulated at most once and then
// served from memory or disk. See DESIGN.md §12.
//
// Endpoints:
//
//	GET /v1/workloads          workload metadata (JSON)
//	GET /v1/report/{workload}  canonical report JSON for one workload
//	GET /v1/tables/{workload}  rendered tables ("all" = every workload;
//	                           ?experiment=table1,fig4 selects a subset)
//	GET /healthz               liveness probe
//	GET /metrics               server/cache/health counters and request
//	                           latency percentiles (JSON)
package reportserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/resultcache"
)

// DefaultRequestTimeout bounds one request's simulation work when
// Config.RequestTimeout is zero. A cold default-window workload takes
// a couple of seconds, so this is generous; cache hits are instant.
const DefaultRequestTimeout = 2 * time.Minute

// shutdownGrace is how long Serve waits for in-flight requests after
// its context is canceled. Request contexts descend from the serve
// context, so cancellation aborts in-flight simulations (the PR 3
// machinery) and drains well inside the grace period.
const shutdownGrace = 10 * time.Second

// Config configures a Server.
type Config struct {
	// RunConfig is the measurement configuration every request is
	// served with (the server's identity: one config, eight workloads,
	// one cache key each).
	RunConfig repro.Config

	// Cache is the result cache (nil = a fresh memory-only cache).
	Cache *resultcache.Cache

	// RequestTimeout bounds each request including any simulation it
	// triggers (0 = DefaultRequestTimeout, negative = none).
	RequestTimeout time.Duration

	// Log receives request-level log lines (nil = silent).
	Log *obs.Logger

	// Run overrides the per-workload compute function (nil =
	// repro.RunWorkload). Injectable for tests.
	Run func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error)
}

// Server is the report-serving daemon.
type Server struct {
	cfg    Config
	runner *repro.Runner
	names  map[string]bool
	reg    *obs.Registry // requests.* counters, latency.* timers
	log    *obs.Logger
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Cache == nil {
		cfg.Cache, _ = resultcache.New(0, "") // memory-only New cannot fail
	}
	s := &Server{
		cfg:    cfg,
		runner: &repro.Runner{Cache: cfg.Cache, Run: cfg.Run},
		names:  make(map[string]bool),
		reg:    obs.NewRegistry(),
		log:    cfg.Log,
	}
	for _, name := range repro.Workloads() {
		s.names[name] = true
	}
	return s
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/workloads", s.instrument("workloads", s.handleWorkloads))
	mux.HandleFunc("GET /v1/report/{workload}", s.instrument("report", s.handleReport))
	mux.HandleFunc("GET /v1/tables/{workload}", s.instrument("tables", s.handleTables))
	return mux
}

// ListenAndServe serves on addr until ctx is canceled, then shuts
// down gracefully (in-flight simulations are canceled through the
// request contexts and their requests drain with an error response).
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}

// Serve is ListenAndServe on an existing listener.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Request contexts descend from ctx so a daemon-level cancel
		// (SIGINT) aborts in-flight simulations immediately.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		err := srv.Shutdown(shctx)
		<-errc // always http.ErrServerClosed after Shutdown
		if s.log != nil {
			s.log.Info("server stopped", "cause", context.Cause(ctx))
		}
		return err
	}
}

// instrument wraps a handler with a request counter, a latency timer,
// and the per-request timeout.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("requests." + name).Inc()
		timeout := s.cfg.RequestTimeout
		if timeout == 0 {
			timeout = DefaultRequestTimeout
		}
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		start := time.Now()
		h(w, r)
		d := time.Since(start)
		s.reg.Timer("latency." + name).Observe(d)
		if s.log != nil {
			s.log.Debug("request", "path", r.URL.Path, "ms", d.Milliseconds())
		}
	}
}

// fail writes an error response, classifying context ends: a client
// cancel maps to 499 (client closed request), a deadline to 504.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error, status int) {
	switch {
	case errors.Is(err, context.Canceled):
		status = 499
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	s.reg.Counter("errors").Inc()
	if s.log != nil {
		s.log.Warn("request failed", "path", r.URL.Path, "status", status, "err", err)
	}
	http.Error(w, err.Error(), status)
}

// writeJSON marshals v as indented JSON.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, repro.WorkloadInfos())
}

// reports resolves the {workload} path element ("all" or one name)
// into reports via the cache-backed runner.
func (s *Server) reports(r *http.Request) ([]*repro.Report, error) {
	name := r.PathValue("workload")
	if name == "all" {
		return s.runner.RunAll(r.Context(), s.cfg.RunConfig)
	}
	if !s.names[name] {
		return nil, fmt.Errorf("unknown workload %q (have %s, or \"all\")",
			name, strings.Join(repro.Workloads(), ", "))
	}
	rep, err := s.runner.RunWorkload(r.Context(), name, s.cfg.RunConfig)
	if err != nil {
		return nil, err
	}
	return []*repro.Report{rep}, nil
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("workload")
	if !s.names[name] {
		s.fail(w, r, fmt.Errorf("unknown workload %q (have %s)",
			name, strings.Join(repro.Workloads(), ", ")), http.StatusNotFound)
		return
	}
	rep, err := s.runner.RunWorkload(r.Context(), name, s.cfg.RunConfig)
	if err != nil {
		s.fail(w, r, err, http.StatusInternalServerError)
		return
	}
	// Serve the canonical form: byte-identical whether this request
	// simulated or hit the cache (pinned by the golden corpus test).
	data, err := repro.CanonicalReportJSON(rep)
	if err != nil {
		s.fail(w, r, err, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	// Validate the experiment selection before running anything.
	var experiments []string
	if q := r.URL.Query().Get("experiment"); q != "" && q != "all" {
		valid := make(map[string]bool)
		for _, e := range repro.Experiments() {
			valid[e] = true
		}
		for _, e := range strings.Split(q, ",") {
			e = strings.TrimSpace(e)
			if !valid[e] {
				s.fail(w, r, fmt.Errorf("unknown experiment %q (have %s, or \"all\")",
					e, strings.Join(repro.Experiments(), ", ")), http.StatusBadRequest)
				return
			}
			experiments = append(experiments, e)
		}
	}
	reports, err := s.reports(r)
	if err != nil && len(reports) == 0 {
		status := http.StatusInternalServerError
		if strings.Contains(err.Error(), "unknown workload") {
			status = http.StatusNotFound
		}
		s.fail(w, r, err, status)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err != nil {
		// Fail-soft like the CLI: render the surviving workloads and
		// flag the partial result.
		w.Header().Set("X-Instrep-Partial", "true")
		fmt.Fprintf(w, "# partial result: %v\n\n", err)
	}
	if len(experiments) == 0 {
		fmt.Fprint(w, repro.FormatAll(reports))
		return
	}
	for _, e := range experiments {
		out, ferr := repro.Format(e, reports)
		if ferr != nil {
			fmt.Fprintf(w, "# %s: %v\n", e, ferr)
			continue
		}
		fmt.Fprintln(w, out)
	}
}

// metricsDoc is the /metrics response document.
type metricsDoc struct {
	Requests  []obs.NamedValue `json:"requests"`
	Latency   []obs.NamedTimer `json:"latency"`
	Cache     []obs.NamedValue `json:"cache"`
	Health    []obs.NamedValue `json:"health"`
	Workloads int              `json:"workloads"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, metricsDoc{
		Requests:  s.reg.CounterValues(),
		Latency:   s.reg.TimerValues(),
		Cache:     s.cfg.Cache.StatValues(),
		Health:    obs.HealthCounters(),
		Workloads: len(s.names),
	})
}
