package reportserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/jobs"
	"repro/internal/minic"
)

// newJobsServer builds a ready server with the job tier attached.
func newJobsServer(t *testing.T, cfg Config, jc JobsConfig) (*Server, *httptest.Server) {
	t.Helper()
	if jc.Dir == "" {
		jc.Dir = t.TempDir()
	}
	if jc.Backoff == 0 {
		jc.Backoff = time.Millisecond
	}
	s := New(cfg)
	if err := s.OpenJobs(jc); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.jobs.Drain)
	s.MarkReady()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// waitReady polls /healthz until the server answers 200.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// pollJob polls the status endpoint until the job reaches want.
func pollJob(t *testing.T, base, id string, want jobs.State) jobs.Doc {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _, body := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("job status: code=%d body=%q", code, body)
		}
		var doc jobs.Doc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		if doc.State == want {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id[:12], doc.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobLifecycleOverHTTP walks the whole async path: submit (202 +
// Location), duplicate submit (200, same job), poll to done, fetch the
// report, and confirm the bytes match the synchronous endpoint for the
// same measurement.
func TestJobLifecycleOverHTTP(t *testing.T) {
	var sims atomic.Int64
	cfg := Config{
		RunConfig: repro.Config{SkipInstructions: 50, MeasureInstructions: 500},
		Run:       fakeRun(&sims, 0),
	}
	_, ts := newJobsServer(t, cfg, JobsConfig{})

	code, hdr, body := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"workload":"lzw"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d body=%q", code, body)
	}
	var doc jobs.Doc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if loc := hdr.Get("Location"); loc != "/v1/jobs/"+doc.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, doc.ID)
	}
	// The spec was defaulted from the server's RunConfig.
	if doc.Spec.Skip != 50 || doc.Spec.Measure != 500 {
		t.Errorf("spec window = %d/%d, want the RunConfig defaults 50/500", doc.Spec.Skip, doc.Spec.Measure)
	}

	// An identical resubmit is the same job, answered 200.
	code, _, body = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"workload":"lzw"}`)
	var dup jobs.Doc
	json.Unmarshal(body, &dup)
	if code != http.StatusOK || dup.ID != doc.ID {
		t.Errorf("duplicate submit: code=%d id=%s, want 200/%s", code, dup.ID, doc.ID)
	}

	pollJob(t, ts.URL, doc.ID, jobs.StateDone)
	code, _, jobReport := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+doc.ID+"/report", "")
	if code != http.StatusOK {
		t.Fatalf("job report: code=%d body=%q", code, jobReport)
	}
	code, syncReport := get(t, ts.URL+"/v1/report/lzw")
	if code != http.StatusOK {
		t.Fatalf("sync report: code=%d", code)
	}
	if !bytes.Equal(jobReport, syncReport) {
		t.Errorf("async report differs from sync report:\n%s\n%s", jobReport, syncReport)
	}
}

// TestJobReportPending pins the not-ready contract: 202 + Retry-After +
// the status doc, for both the report and status endpoints.
func TestJobReportPending(t *testing.T) {
	release := make(chan struct{})
	run := func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		select {
		case <-release:
			return &repro.Report{Benchmark: name}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, ts := newJobsServer(t, Config{Run: run}, JobsConfig{})
	defer close(release)

	code, _, body := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"workload":"lzw","measure":1000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d body=%q", code, body)
	}
	var doc jobs.Doc
	json.Unmarshal(body, &doc)

	code, hdr, body := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+doc.ID+"/report", "")
	if code != http.StatusAccepted {
		t.Fatalf("pending report: code=%d body=%q", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("pending report carries no Retry-After")
	}
	var pending jobs.Doc
	if err := json.Unmarshal(body, &pending); err != nil || pending.State.Terminal() {
		t.Errorf("pending report body = %q (err %v), want a live status doc", body, err)
	}
	code, hdr, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+doc.ID, "")
	if code != http.StatusOK || hdr.Get("Retry-After") == "" {
		t.Errorf("live status: code=%d retry-after=%q, want 200 with pacing", code, hdr.Get("Retry-After"))
	}
}

// TestJobErrors pins the failure-mode statuses: bad spec 400, unknown
// job 404, failed job report 500, canceled job report 410, cancel of a
// terminal job 409.
func TestJobErrors(t *testing.T) {
	run := func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		return nil, &minic.Error{Line: 1, Msg: "boom"}
	}
	_, ts := newJobsServer(t, Config{Run: run}, JobsConfig{})

	if code, _, body := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"workload":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("unknown workload: code=%d body=%q", code, body)
	}
	if code, _, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{bad json`); code != http.StatusBadRequest {
		t.Errorf("bad json: code=%d", code)
	}
	if code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/feedc0de", ""); code != http.StatusNotFound {
		t.Errorf("unknown job status: code=%d", code)
	}
	if code, _, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/feedc0de", ""); code != http.StatusNotFound {
		t.Errorf("unknown job cancel: code=%d", code)
	}

	// A compile error fails permanently (no retries burned).
	code, _, body := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"workload":"lzw"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d body=%q", code, body)
	}
	var doc jobs.Doc
	json.Unmarshal(body, &doc)
	failed := pollJob(t, ts.URL, doc.ID, jobs.StateFailed)
	if failed.Retries != 0 || !strings.Contains(failed.Error, "boom") {
		t.Errorf("failed doc = %+v, want 0 retries and the compile error", failed)
	}
	if code, _, body := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+doc.ID+"/report", ""); code != http.StatusInternalServerError || !strings.Contains(string(body), "boom") {
		t.Errorf("failed report: code=%d body=%q", code, body)
	}
	if code, _, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+doc.ID, ""); code != http.StatusConflict {
		t.Errorf("cancel terminal: code=%d", code)
	}
}

// TestJobCancelOverHTTP cancels a running job and pins the 410 report.
func TestJobCancelOverHTTP(t *testing.T) {
	started := make(chan struct{}, 1)
	run := func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, ts := newJobsServer(t, Config{Run: run}, JobsConfig{})

	code, _, body := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"workload":"lzw"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d body=%q", code, body)
	}
	var doc jobs.Doc
	json.Unmarshal(body, &doc)
	<-started
	if code, _, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+doc.ID, ""); code != http.StatusOK {
		t.Errorf("cancel running: code=%d", code)
	}
	pollJob(t, ts.URL, doc.ID, jobs.StateCanceled)
	if code, _, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+doc.ID+"/report", ""); code != http.StatusGone {
		t.Errorf("canceled report: code=%d", code)
	}
}

// TestJobsObservability pins /debug/jobs, the job_ sections of
// /healthz and /metrics (JSON and Prometheus), and that none of them
// exist without the job tier.
func TestJobsObservability(t *testing.T) {
	var sims atomic.Int64
	s, ts := newJobsServer(t, Config{Run: fakeRun(&sims, 0)}, JobsConfig{})

	code, _, body := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"workload":"lzw"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d body=%q", code, body)
	}
	var doc jobs.Doc
	json.Unmarshal(body, &doc)
	pollJob(t, ts.URL, doc.ID, jobs.StateDone)

	code, body = get(t, ts.URL+"/debug/jobs")
	if code != http.StatusOK {
		t.Fatalf("/debug/jobs: code=%d", code)
	}
	var debug jobsDebugDoc
	if err := json.Unmarshal(body, &debug); err != nil {
		t.Fatal(err)
	}
	if debug.Count != 1 || len(debug.Jobs) != 1 || debug.Jobs[0].State != jobs.StateDone {
		t.Errorf("/debug/jobs = %+v", debug)
	}

	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"jobs_queued"`) {
		t.Errorf("/healthz without job gauges: code=%d body=%q", code, body)
	}
	_, body = get(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), `"jobs"`) {
		t.Errorf("/metrics JSON missing jobs section")
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics?format=prometheus", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "instrep_job_done 1") {
		t.Errorf("prometheus exposition missing instrep_job_done:\n%s", prom)
	}
	_ = s

	// A server without OpenJobs has no job routes at all.
	plain := New(Config{Run: fakeRun(&sims, 0)})
	plain.MarkReady()
	pts := httptest.NewServer(plain.Handler())
	defer pts.Close()
	if code, _, _ := doJSON(t, http.MethodPost, pts.URL+"/v1/jobs", `{"workload":"lzw"}`); code != http.StatusNotFound {
		t.Errorf("jobless server answered /v1/jobs with %d", code)
	}
}

// TestServeDrainsJobs pins graceful shutdown: canceling the serve
// context drains the manager, journaling the in-flight job as
// interrupted, and a second server over the same directories recovers
// and finishes it.
func TestServeDrainsJobs(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	blockRun := func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s := New(Config{Run: blockRun})
	if err := s.OpenJobs(JobsConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { done <- s.Serve(ctx, l) }()
	base := "http://" + l.Addr().String()
	waitReady(t, base)

	code, _, body := doJSON(t, http.MethodPost, base+"/v1/jobs", `{"workload":"lzw"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d body=%q", code, body)
	}
	var doc jobs.Doc
	json.Unmarshal(body, &doc)
	<-started
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// Second life: recovery re-enqueues, a working runner finishes.
	var sims atomic.Int64
	s2 := New(Config{Run: fakeRun(&sims, 0)})
	if err := s2.OpenJobs(JobsConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.jobs.Drain)
	s2.MarkReady()
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	got := pollJob(t, ts.URL, doc.ID, jobs.StateDone)
	if got.ID != doc.ID {
		t.Errorf("recovered job id = %s, want %s", got.ID, doc.ID)
	}
}
