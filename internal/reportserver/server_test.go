package reportserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/resultcache"
)

// fakeRun returns a Run override that fabricates a complete report and
// counts simulations.
func fakeRun(count *atomic.Int64, delay time.Duration) func(context.Context, string, repro.Config) (*repro.Report, error) {
	return func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		count.Add(1)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			}
		}
		return &repro.Report{
			Benchmark:            name,
			DynTotal:             12345,
			MeasuredInstructions: cfg.MeasureInstructions,
			DynRepeatedPct:       80,
		}, nil
	}
}

// newTestServer builds a server around a fake runner and a cache.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: code=%d body=%q", code, body)
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := get(t, ts.URL+"/v1/workloads")
	if code != http.StatusOK {
		t.Fatalf("workloads: code=%d", code)
	}
	var infos []repro.WorkloadInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(repro.Workloads()) {
		t.Fatalf("got %d workloads, want %d", len(infos), len(repro.Workloads()))
	}
}

func TestReportMissThenHit(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})
	code1, body1 := get(t, ts.URL+"/v1/report/goban")
	code2, body2 := get(t, ts.URL+"/v1/report/goban")
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("codes: %d, %d", code1, code2)
	}
	if sims.Load() != 1 {
		t.Fatalf("second request must hit the cache: %d simulations", sims.Load())
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cache hit served different bytes than the miss")
	}
	var rep repro.Report
	if err := json.Unmarshal(body1, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "goban" || rep.DynTotal != 12345 {
		t.Fatalf("served report wrong: %+v", rep)
	}
}

func TestReportUnknownWorkload(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})
	code, body := get(t, ts.URL+"/v1/report/nope")
	if code != http.StatusNotFound {
		t.Fatalf("want 404, got %d: %s", code, body)
	}
	if sims.Load() != 0 {
		t.Fatal("unknown workload must not simulate")
	}
}

// TestSingleflightUnderConcurrentClients is the acceptance hammer: N
// concurrent requests for one cold key cause exactly one simulation.
// Run under -race via the Makefile race target.
func TestSingleflightUnderConcurrentClients(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 100*time.Millisecond)})

	const clients = 12
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/report/goban")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	if n := sims.Load(); n != 1 {
		t.Fatalf("want exactly 1 simulation for %d concurrent clients, got %d", clients, n)
	}
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
}

// TestCancelMidSimulation pins that a client disconnect aborts the
// simulation through its context, nothing poisons the cache, and the
// next request computes cleanly.
func TestCancelMidSimulation(t *testing.T) {
	var sims atomic.Int64
	simStarted := make(chan struct{}, 8)
	run := func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		sims.Add(1)
		simStarted <- struct{}{}
		<-ctx.Done() // wedge until the request is canceled
		return nil, context.Cause(ctx)
	}
	var okRun atomic.Bool
	_, ts := newTestServer(t, Config{Run: func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		if okRun.Load() {
			return fakeRun(&sims, 0)(ctx, name, cfg)
		}
		return run(ctx, name, cfg)
	}})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/report/goban", nil)
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		done <- err
	}()
	<-simStarted
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled request should fail on the client side")
	}

	// The aborted simulation must not be cached: the next request
	// simulates again and succeeds.
	okRun.Store(true)
	code, body := get(t, ts.URL+"/v1/report/goban")
	if code != http.StatusOK {
		t.Fatalf("follow-up request failed: %d %s", code, body)
	}
	if n := sims.Load(); n != 2 {
		t.Fatalf("want 2 simulations (aborted + fresh), got %d", n)
	}
}

// TestCorruptDiskEntryServed pins the disk tier's corruption fallback
// end to end: a scribbled cache file is detected, dropped, recomputed,
// and healed, and the client never sees the corruption.
func TestCorruptDiskEntryServed(t *testing.T) {
	dir := t.TempDir()
	cache, err := resultcache.New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	var sims atomic.Int64
	runCfg := repro.QuickConfig()
	_, ts := newTestServer(t, Config{Cache: cache, RunConfig: runCfg, Run: fakeRun(&sims, 0)})

	// Plant garbage at the exact key the server will look up.
	source, ok := repro.WorkloadSource("goban")
	if !ok {
		t.Fatal("no source for goban")
	}
	key := resultcache.Fingerprint("goban", source, runCfg)
	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, []byte(`{"Benchmark":"goban",`), 0o644); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, ts.URL+"/v1/report/goban")
	if code != http.StatusOK {
		t.Fatalf("corrupt entry leaked to the client: %d %s", code, body)
	}
	var rep repro.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "goban" || rep.DynTotal != 12345 {
		t.Fatalf("served report wrong after corruption: %+v", rep)
	}
	if sims.Load() != 1 {
		t.Fatalf("corrupt entry must recompute: %d simulations", sims.Load())
	}
	if cache.Stats.Corrupt.Value() != 1 {
		t.Fatalf("corrupt counter: %d", cache.Stats.Corrupt.Value())
	}
	// Healed: the file now byte-matches the served body.
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, body) {
		t.Fatal("healed disk entry differs from the served canonical JSON")
	}
}

func TestTablesEndpoint(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})

	code, body := get(t, ts.URL+"/v1/tables/goban?experiment=table1")
	if code != http.StatusOK {
		t.Fatalf("tables: %d %s", code, body)
	}
	if !strings.Contains(string(body), "goban") || !strings.Contains(string(body), "Table 1") {
		t.Fatalf("table output missing content:\n%s", body)
	}

	code, body = get(t, ts.URL+"/v1/tables/goban?experiment=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("bad experiment should 400, got %d: %s", code, body)
	}
	if sims.Load() != 1 {
		t.Fatal("invalid experiment must be rejected before simulating")
	}

	code, _ = get(t, ts.URL+"/v1/tables/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown workload should 404, got %d", code)
	}

	// "all" renders every workload through the same cache.
	code, body = get(t, ts.URL+"/v1/tables/all")
	if code != http.StatusOK {
		t.Fatalf("tables/all: %d", code)
	}
	for _, name := range repro.Workloads() {
		if !strings.Contains(string(body), name) {
			t.Errorf("tables/all missing %s", name)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})
	get(t, ts.URL+"/v1/report/goban")
	get(t, ts.URL+"/v1/report/goban")

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	var doc struct {
		Requests []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"requests"`
		Latency []struct {
			Name  string `json:"name"`
			Count uint64 `json:"count"`
		} `json:"latency"`
		Cache []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	find := func(section string) map[string]int64 {
		out := map[string]int64{}
		switch section {
		case "requests":
			for _, v := range doc.Requests {
				out[v.Name] = v.Value
			}
		case "cache":
			for _, v := range doc.Cache {
				out[v.Name] = v.Value
			}
		}
		return out
	}
	if got := find("requests")["requests.report"]; got != 2 {
		t.Errorf("requests.report = %d, want 2", got)
	}
	cache := find("cache")
	if cache["hits"] != 1 || cache["misses"] != 1 {
		t.Errorf("cache counters wrong: %v", cache)
	}
	foundLatency := false
	for _, l := range doc.Latency {
		if l.Name == "latency.report" && l.Count == 2 {
			foundLatency = true
		}
	}
	if !foundLatency {
		t.Errorf("latency.report timer missing or wrong: %+v", doc.Latency)
	}
}

// TestServeGracefulShutdown pins the daemon lifecycle: canceling the
// serve context stops the listener and Serve returns cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	var sims atomic.Int64
	s := New(Config{Run: fakeRun(&sims, 0)})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, l) }()

	url := "http://" + l.Addr().String()
	code, _ := get(t, url+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz before shutdown: %d", code)
	}
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancel")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener should be closed after shutdown")
	}
}

// TestServedReportMatchesGoldenCorpus is the end-to-end acceptance
// check with the real simulator: the cache-enabled serve path returns
// byte-identical report JSON to a direct RunWorkload, both pinned by
// the golden corpus.
func TestServedReportMatchesGoldenCorpus(t *testing.T) {
	cfg := repro.QuickConfig()
	_, ts := newTestServer(t, Config{RunConfig: cfg})

	// Twice: once simulating (cold), once from the cache.
	code, cold := get(t, ts.URL+"/v1/report/lzw")
	if code != http.StatusOK {
		t.Fatalf("cold request: %d", code)
	}
	code, warm := get(t, ts.URL+"/v1/report/lzw")
	if code != http.StatusOK {
		t.Fatalf("warm request: %d", code)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cold and warm responses differ")
	}

	direct, err := repro.RunWorkload(context.Background(), "lzw", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.CanonicalReportJSON(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, want) {
		t.Fatal("served report differs from direct RunWorkload")
	}

	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "lzw.json"))
	if err != nil {
		t.Fatalf("golden corpus missing: %v", err)
	}
	if !bytes.Equal(cold, golden) {
		t.Fatal("served report differs from the golden corpus")
	}
}

// TestRequestTimeout pins the per-request timeout: a simulation slower
// than the budget is cut off with 504.
func TestRequestTimeout(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{
		Run:            fakeRun(&sims, 5*time.Second),
		RequestTimeout: 50 * time.Millisecond,
	})
	code, body := get(t, ts.URL+"/v1/report/goban")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d: %s", code, body)
	}
}
