package reportserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/resultcache"
)

// fakeRun returns a Run override that fabricates a complete report and
// counts simulations.
func fakeRun(count *atomic.Int64, delay time.Duration) func(context.Context, string, repro.Config) (*repro.Report, error) {
	return func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		count.Add(1)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			}
		}
		return &repro.Report{
			Benchmark:            name,
			DynTotal:             12345,
			MeasuredInstructions: cfg.MeasureInstructions,
			DynRepeatedPct:       80,
		}, nil
	}
}

// newTestServer builds a server around a fake runner and a cache,
// marked ready the way Serve would.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.MarkReady()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestHealthz pins the readiness state machine: a freshly built server
// is "starting" (503, so load balancers hold traffic), MarkReady flips
// it to "ready" (200).
func TestHealthz(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), `"starting"`) {
		t.Fatalf("healthz before ready: code=%d body=%q", code, body)
	}
	s.MarkReady()
	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ready"`) {
		t.Fatalf("healthz after MarkReady: code=%d body=%q", code, body)
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := get(t, ts.URL+"/v1/workloads")
	if code != http.StatusOK {
		t.Fatalf("workloads: code=%d", code)
	}
	var infos []repro.WorkloadInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(repro.Workloads()) {
		t.Fatalf("got %d workloads, want %d", len(infos), len(repro.Workloads()))
	}
}

func TestReportMissThenHit(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})
	code1, body1 := get(t, ts.URL+"/v1/report/goban")
	code2, body2 := get(t, ts.URL+"/v1/report/goban")
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("codes: %d, %d", code1, code2)
	}
	if sims.Load() != 1 {
		t.Fatalf("second request must hit the cache: %d simulations", sims.Load())
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cache hit served different bytes than the miss")
	}
	var rep repro.Report
	if err := json.Unmarshal(body1, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "goban" || rep.DynTotal != 12345 {
		t.Fatalf("served report wrong: %+v", rep)
	}
}

func TestReportUnknownWorkload(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})
	code, body := get(t, ts.URL+"/v1/report/nope")
	if code != http.StatusNotFound {
		t.Fatalf("want 404, got %d: %s", code, body)
	}
	if sims.Load() != 0 {
		t.Fatal("unknown workload must not simulate")
	}
}

// TestSingleflightUnderConcurrentClients is the acceptance hammer: N
// concurrent requests for one cold key cause exactly one simulation.
// Run under -race via the Makefile race target.
func TestSingleflightUnderConcurrentClients(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 100*time.Millisecond)})

	const clients = 12
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/report/goban")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	if n := sims.Load(); n != 1 {
		t.Fatalf("want exactly 1 simulation for %d concurrent clients, got %d", clients, n)
	}
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
}

// TestCancelMidSimulation pins that a client disconnect aborts the
// simulation through its context, nothing poisons the cache, and the
// next request computes cleanly.
func TestCancelMidSimulation(t *testing.T) {
	var sims atomic.Int64
	simStarted := make(chan struct{}, 8)
	run := func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		sims.Add(1)
		simStarted <- struct{}{}
		<-ctx.Done() // wedge until the request is canceled
		return nil, context.Cause(ctx)
	}
	var okRun atomic.Bool
	_, ts := newTestServer(t, Config{Run: func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		if okRun.Load() {
			return fakeRun(&sims, 0)(ctx, name, cfg)
		}
		return run(ctx, name, cfg)
	}})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/report/goban", nil)
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		done <- err
	}()
	<-simStarted
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled request should fail on the client side")
	}

	// The aborted simulation must not be cached: the next request
	// simulates again and succeeds.
	okRun.Store(true)
	code, body := get(t, ts.URL+"/v1/report/goban")
	if code != http.StatusOK {
		t.Fatalf("follow-up request failed: %d %s", code, body)
	}
	if n := sims.Load(); n != 2 {
		t.Fatalf("want 2 simulations (aborted + fresh), got %d", n)
	}
}

// TestCorruptDiskEntryServed pins the disk tier's corruption fallback
// end to end: a scribbled cache file is detected, dropped, recomputed,
// and healed, and the client never sees the corruption.
func TestCorruptDiskEntryServed(t *testing.T) {
	dir := t.TempDir()
	cache, err := resultcache.New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	var sims atomic.Int64
	runCfg := repro.QuickConfig()
	_, ts := newTestServer(t, Config{Cache: cache, RunConfig: runCfg, Run: fakeRun(&sims, 0)})

	// Plant garbage at the exact key the server will look up.
	source, ok := repro.WorkloadSource("goban")
	if !ok {
		t.Fatal("no source for goban")
	}
	key := resultcache.Fingerprint("goban", source, runCfg)
	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, []byte(`{"Benchmark":"goban",`), 0o644); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, ts.URL+"/v1/report/goban")
	if code != http.StatusOK {
		t.Fatalf("corrupt entry leaked to the client: %d %s", code, body)
	}
	var rep repro.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "goban" || rep.DynTotal != 12345 {
		t.Fatalf("served report wrong after corruption: %+v", rep)
	}
	if sims.Load() != 1 {
		t.Fatalf("corrupt entry must recompute: %d simulations", sims.Load())
	}
	if cache.Stats.Corrupt.Value() != 1 {
		t.Fatalf("corrupt counter: %d", cache.Stats.Corrupt.Value())
	}
	// Healed: the file now byte-matches the served body.
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healed, body) {
		t.Fatal("healed disk entry differs from the served canonical JSON")
	}
}

func TestTablesEndpoint(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})

	code, body := get(t, ts.URL+"/v1/tables/goban?experiment=table1")
	if code != http.StatusOK {
		t.Fatalf("tables: %d %s", code, body)
	}
	if !strings.Contains(string(body), "goban") || !strings.Contains(string(body), "Table 1") {
		t.Fatalf("table output missing content:\n%s", body)
	}

	code, body = get(t, ts.URL+"/v1/tables/goban?experiment=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("bad experiment should 400, got %d: %s", code, body)
	}
	if sims.Load() != 1 {
		t.Fatal("invalid experiment must be rejected before simulating")
	}

	code, _ = get(t, ts.URL+"/v1/tables/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown workload should 404, got %d", code)
	}

	// "all" renders every workload through the same cache.
	code, body = get(t, ts.URL+"/v1/tables/all")
	if code != http.StatusOK {
		t.Fatalf("tables/all: %d", code)
	}
	for _, name := range repro.Workloads() {
		if !strings.Contains(string(body), name) {
			t.Errorf("tables/all missing %s", name)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})
	get(t, ts.URL+"/v1/report/goban")
	get(t, ts.URL+"/v1/report/goban")

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	var doc struct {
		Requests []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"requests"`
		Latency []struct {
			Name  string `json:"name"`
			Count uint64 `json:"count"`
		} `json:"latency"`
		Cache []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	find := func(section string) map[string]int64 {
		out := map[string]int64{}
		switch section {
		case "requests":
			for _, v := range doc.Requests {
				out[v.Name] = v.Value
			}
		case "cache":
			for _, v := range doc.Cache {
				out[v.Name] = v.Value
			}
		}
		return out
	}
	if got := find("requests")["server_requests_report"]; got != 2 {
		t.Errorf("server_requests_report = %d, want 2", got)
	}
	cache := find("cache")
	if cache["hits"] != 1 || cache["misses"] != 1 {
		t.Errorf("cache counters wrong: %v", cache)
	}
	foundLatency := false
	for _, l := range doc.Latency {
		if l.Name == "server_latency_report" && l.Count == 2 {
			foundLatency = true
		}
	}
	if !foundLatency {
		t.Errorf("server_latency_report histogram missing or wrong: %+v", doc.Latency)
	}
}

// TestServeGracefulShutdown pins the daemon lifecycle: canceling the
// serve context stops the listener and Serve returns cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	var sims atomic.Int64
	s := New(Config{Run: fakeRun(&sims, 0)})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, l) }()

	url := "http://" + l.Addr().String()
	code, _ := get(t, url+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz before shutdown: %d", code)
	}
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancel")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener should be closed after shutdown")
	}
}

// TestServedReportMatchesGoldenCorpus is the end-to-end acceptance
// check with the real simulator: the cache-enabled serve path returns
// byte-identical report JSON to a direct RunWorkload, both pinned by
// the golden corpus.
func TestServedReportMatchesGoldenCorpus(t *testing.T) {
	cfg := repro.QuickConfig()
	_, ts := newTestServer(t, Config{RunConfig: cfg})

	// Twice: once simulating (cold), once from the cache.
	code, cold := get(t, ts.URL+"/v1/report/lzw")
	if code != http.StatusOK {
		t.Fatalf("cold request: %d", code)
	}
	code, warm := get(t, ts.URL+"/v1/report/lzw")
	if code != http.StatusOK {
		t.Fatalf("warm request: %d", code)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cold and warm responses differ")
	}

	direct, err := repro.RunWorkload(context.Background(), "lzw", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.CanonicalReportJSON(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, want) {
		t.Fatal("served report differs from direct RunWorkload")
	}

	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "lzw.json"))
	if err != nil {
		t.Fatalf("golden corpus missing: %v", err)
	}
	if !bytes.Equal(cold, golden) {
		t.Fatal("served report differs from the golden corpus")
	}
}

// TestRequestTimeout pins the per-request timeout: a simulation slower
// than the budget is cut off with 504.
func TestRequestTimeout(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{
		Run:            fakeRun(&sims, 5*time.Second),
		RequestTimeout: 50 * time.Millisecond,
	})
	code, body := get(t, ts.URL+"/v1/report/goban")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d: %s", code, body)
	}
}

// TestOverloadShedsBurst is the overload acceptance check: with one
// simulation slot and a queue of one, a cold burst of 16 requests (two
// per workload) keeps exactly one simulation in flight and at most one
// queued, sheds the rest with 503 + Retry-After, and completes the
// admitted work correctly. The outcome counts are deterministic even
// though which workloads win the slot is not: same-workload pairs
// coalesce through the singleflight, so eight leaders contend for the
// gate — one runs, one queues, six shed, and every follower inherits
// its leader's outcome (12 shed responses, 4 served).
func TestOverloadShedsBurst(t *testing.T) {
	var sims atomic.Int64
	release := make(chan struct{})
	run := func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		sims.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
		return &repro.Report{Benchmark: name, DynTotal: 12345}, nil
	}
	s, ts := newTestServer(t, Config{
		MaxConcurrentSims: 1,
		QueueDepth:        1,
		RetryAfter:        7 * time.Second,
		Run:               run,
	})

	workloads := repro.Workloads()
	if len(workloads) != 8 {
		t.Fatalf("test assumes 8 workloads, have %d", len(workloads))
	}
	type result struct {
		code       int
		retryAfter string
	}
	results := make(chan result, 2*len(workloads))
	for _, name := range workloads {
		for i := 0; i < 2; i++ {
			go func(name string) {
				resp, err := http.Get(ts.URL + "/v1/report/" + name)
				if err != nil {
					t.Error(err)
					results <- result{}
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				results <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
			}(name)
		}
	}

	// The 12 shed responses complete on their own; the 4 admitted ones
	// are blocked on the release channel until we open it.
	var codes []result
	for len(codes) < 12 {
		codes = append(codes, <-results)
	}
	close(release)
	for len(codes) < 16 {
		codes = append(codes, <-results)
	}

	var ok, shed int
	for _, r := range codes {
		switch r.code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if r.retryAfter != "7" {
				t.Errorf("shed response Retry-After = %q, want \"7\"", r.retryAfter)
			}
		default:
			t.Errorf("unexpected status %d", r.code)
		}
	}
	if ok != 4 || shed != 12 {
		t.Fatalf("got %d ok / %d shed, want 4 / 12", ok, shed)
	}
	if n := sims.Load(); n != 2 {
		t.Errorf("simulations = %d, want 2 (slot holder + queued)", n)
	}
	if hw := s.gate.MaxInFlight(); hw != 1 {
		t.Errorf("max in-flight = %d, want 1", hw)
	}
	if hw := s.gate.MaxQueued(); hw > 1 {
		t.Errorf("max queued = %d, want <= 1", hw)
	}

	// Shed responses are metered apart from served ones:
	// server_latency_shed holds the 12 rejections so the
	// server_latency_report distribution stays honest.
	_, body := get(t, ts.URL+"/metrics")
	var doc struct {
		Requests []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"requests"`
		Latency []struct {
			Name  string `json:"name"`
			Count uint64 `json:"count"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	counters := map[string]int64{}
	for _, v := range doc.Requests {
		counters[v.Name] = v.Value
	}
	if counters["server_shed"] != 12 {
		t.Errorf("server_shed = %d, want 12", counters["server_shed"])
	}
	timers := map[string]uint64{}
	for _, l := range doc.Latency {
		timers[l.Name] = l.Count
	}
	if timers["server_latency_shed"] != 12 || timers["server_latency_report"] != 4 {
		t.Errorf("latency split = shed:%d report:%d, want 12/4",
			timers["server_latency_shed"], timers["server_latency_report"])
	}
}

// TestDegradedStaleServing walks the degradation ladder: a workload
// with a known-good report keeps being served (stale, flagged) while
// its simulations fail and then while its breaker is open — without
// burning simulation slots — and a workload with no good copy fails
// fast. /healthz reports degraded the whole time.
func TestDegradedStaleServing(t *testing.T) {
	cache, err := resultcache.New(1, "") // one memory slot: lzw below evicts goban
	if err != nil {
		t.Fatal(err)
	}
	var sims atomic.Int64
	var failing atomic.Bool
	run := func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		if failing.Load() {
			sims.Add(1)
			return nil, fmt.Errorf("simulated fault in %s", name)
		}
		return fakeRun(&sims, 0)(ctx, name, cfg)
	}
	s, ts := newTestServer(t, Config{
		Cache:            cache,
		ServeStale:       true,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		Run:              run,
	})

	// Seed goban's known-good copy, then evict it from the cache so the
	// next goban request must simulate.
	code, goodBody := get(t, ts.URL+"/v1/report/goban")
	if code != http.StatusOK {
		t.Fatalf("seed request: %d", code)
	}
	get(t, ts.URL+"/v1/report/lzw")
	sims.Store(0)
	failing.Store(true)

	getStale := func() (int, string, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/report/goban")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("X-Instrep-Stale"), body
	}

	// Failures 1 and 2: each simulates, fails, and is answered stale.
	for i := 0; i < 2; i++ {
		code, stale, body := getStale()
		if code != http.StatusOK || stale != "true" {
			t.Fatalf("failure %d: code=%d stale=%q body=%s", i+1, code, stale, body)
		}
		if !bytes.Equal(body, goodBody) {
			t.Fatalf("stale body differs from the known-good report")
		}
	}
	if n := sims.Load(); n != 2 {
		t.Fatalf("simulations before breaker opens = %d, want 2", n)
	}

	// The breaker is open now: stale is served without a simulation.
	code, stale, body := getStale()
	if code != http.StatusOK || stale != "true" || !bytes.Equal(body, goodBody) {
		t.Fatalf("breaker-open stale serve: code=%d stale=%q", code, stale)
	}
	if n := sims.Load(); n != 2 {
		t.Fatalf("breaker-open request simulated: %d sims", n)
	}
	if got := s.State(); got != "degraded" {
		t.Fatalf("state = %q, want degraded", got)
	}
	code, hbody := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(hbody), `"degraded"`) ||
		!strings.Contains(string(hbody), `"goban"`) {
		t.Fatalf("healthz while degraded: code=%d body=%s", code, hbody)
	}

	// A workload with no known-good copy fails fast once ITS breaker
	// opens: 503 + Retry-After, no slot burned.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/report/cc1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("cc1 failure %d: %d, want 500", i+1, resp.StatusCode)
		}
	}
	simsBefore := sims.Load()
	resp, err := http.Get(ts.URL + "/v1/report/cc1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("breaker-open no-stale request: %d (Retry-After %q), want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if sims.Load() != simsBefore {
		t.Fatal("breaker-open request must not simulate")
	}

	// Recovery: the runs heal, the long cooldown still blocks goban (no
	// probe yet), but cached/healthy workloads keep serving normally.
	failing.Store(false)
	code, fresh := get(t, ts.URL+"/v1/report/lzw")
	if code != http.StatusOK {
		t.Fatalf("healthy workload while degraded: %d %s", code, fresh)
	}
}

// TestClientDisconnectMetrics pins satellite (b): a client that hangs
// up mid-simulation is recorded as a 499 under its own counter and
// latency timer, not mixed into the served-request percentiles.
func TestClientDisconnectMetrics(t *testing.T) {
	simStarted := make(chan struct{}, 1)
	run := func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
		simStarted <- struct{}{}
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}
	_, ts := newTestServer(t, Config{Run: run})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/report/goban", nil)
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	<-simStarted
	cancel()
	<-done

	// The handler observes the disconnect asynchronously; poll the
	// metrics until the 499 lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := get(t, ts.URL+"/metrics")
		var doc struct {
			Requests []struct {
				Name  string `json:"name"`
				Value int64  `json:"value"`
			} `json:"requests"`
			Latency []struct {
				Name  string `json:"name"`
				Count uint64 `json:"count"`
			} `json:"latency"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		counters := map[string]int64{}
		for _, v := range doc.Requests {
			counters[v.Name] = v.Value
		}
		timers := map[string]uint64{}
		for _, l := range doc.Latency {
			timers[l.Name] = l.Count
		}
		if counters["server_requests_client_disconnect"] == 1 {
			if timers["server_latency_disconnect"] != 1 {
				t.Fatalf("server_latency_disconnect = %d, want 1", timers["server_latency_disconnect"])
			}
			if timers["server_latency_report"] != 0 {
				t.Fatalf("disconnect leaked into server_latency_report (%d)", timers["server_latency_report"])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client_disconnect never recorded: %v", counters)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
