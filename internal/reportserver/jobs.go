package reportserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// JobsConfig enables the async job tier (DESIGN.md §18): measurements
// too expensive for a request timeout are submitted to a journaled,
// crash-durable queue and fetched when done.
type JobsConfig struct {
	// Dir is the journal directory (required). Pair it with
	// Config.Checkpoints so interrupted jobs resume mid-simulation
	// instead of restarting.
	Dir string
	// Retries bounds attempts after the first (0 = jobs.DefaultRetries).
	Retries int
	// Deadline bounds each attempt's wall clock (0 = none).
	Deadline time.Duration
	// Workers is the concurrent job executor count (0 =
	// jobs.DefaultWorkers). The admission gate still applies: job
	// simulations share the same slots as synchronous requests.
	Workers int
	// CheckpointEvery paces job snapshots by retire count (0 =
	// wall-clock pacing).
	CheckpointEvery uint64
	// Backoff is the base retry delay (0 = jobs.DefaultBackoff).
	Backoff time.Duration
}

// OpenJobs attaches the job tier: replays the journal in jc.Dir,
// re-enqueues interrupted work, and starts the workers. Call it after
// New and before Handler/Serve; the /v1/jobs routes only exist once a
// manager is attached. Serve drains the manager — journaling in-flight
// jobs as interrupted — as part of graceful shutdown.
func (s *Server) OpenJobs(jc JobsConfig) error {
	runCfg := s.cfg.RunConfig
	mgr, err := jobs.Open(jobs.Options{
		Dir:             jc.Dir,
		Runner:          s.runner,
		Checkpoints:     s.cfg.Checkpoints,
		CheckpointEvery: jc.CheckpointEvery,
		Retries:         jc.Retries,
		Deadline:        jc.Deadline,
		Workers:         jc.Workers,
		Backoff:         jc.Backoff,
		Registry:        s.reg,
		Log:             s.log,
		// The Spec carries only measurement identity; the serving
		// process contributes its own execution shaping — the same
		// fields Runner requests already run under.
		Shape: func(cfg *repro.Config) {
			cfg.Timeout = runCfg.Timeout
			cfg.WatchdogInterval = runCfg.WatchdogInterval
			cfg.DisableTranslation = runCfg.DisableTranslation
			cfg.ObserverSampleEvery = runCfg.ObserverSampleEvery
			cfg.Health = runCfg.Health
			cfg.Runs = runCfg.Runs
		},
	})
	if err != nil {
		return err
	}
	s.jobs = mgr
	mgr.Start()
	return nil
}

// jobRoutes mounts the job endpoints (only called with a manager).
func (s *Server) jobRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/jobs", s.instrument("job_submit", true, s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job_status", false, s.handleJobStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.instrument("job_report", true, s.handleJobReport))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("job_cancel", false, s.handleJobCancel))
	mux.HandleFunc("GET /debug/jobs", s.instrument("jobs_debug", false, s.handleJobsDebug))
}

// retryAfterHeader attaches a whole-second Retry-After poll hint.
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	if d > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(d.Seconds()))))
	}
}

// handleJobSubmit accepts a job spec, defaulted from the server's own
// RunConfig so `{"workload":"lzw"}` submits the serving configuration
// for lzw. Identical measurements dedupe onto one job: a fresh job
// answers 202 Accepted, a pre-existing one 200 OK, both with a
// Location pointing at the status endpoint.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	spec := jobs.SpecFromConfig("", s.cfg.RunConfig)
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.fail(w, r, fmt.Errorf("bad job spec: %w", err), http.StatusBadRequest)
		return
	}
	doc, existing, err := s.jobs.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrDraining):
		s.fail(w, r, err, http.StatusServiceUnavailable)
		return
	case err != nil:
		s.fail(w, r, err, http.StatusBadRequest)
		return
	}
	s.log.Info("job accepted", "id", doc.ID[:12], "existing", existing)
	w.Header().Set("Location", "/v1/jobs/"+doc.ID)
	if existing {
		s.writeJSON(w, doc)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// handleJobStatus reports a job's state, retry/resume counts, last
// checkpoint, and — while live — a Retry-After poll pacing hint.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	doc, err := s.jobs.Status(r.PathValue("id"))
	if err != nil {
		s.fail(w, r, err, http.StatusNotFound)
		return
	}
	retryAfterHeader(w, doc.RetryAfter(time.Now(), s.cfg.RetryAfter))
	s.writeJSON(w, doc)
}

// handleJobReport serves a done job's canonical report bytes —
// byte-identical to a synchronous /v1/report answer for the same
// measurement, however many crashes and resumes it took. A live job
// answers 202 with its status doc and poll pacing; a failed job 500
// with its recorded error; a canceled job 410.
func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	doc, err := s.jobs.Status(id)
	if err != nil {
		s.fail(w, r, err, http.StatusNotFound)
		return
	}
	switch doc.State {
	case jobs.StateDone:
		data, err := s.jobs.ReportJSON(r.Context(), id)
		if err != nil {
			s.fail(w, r, err, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case jobs.StateFailed:
		s.fail(w, r, fmt.Errorf("job failed: %s", doc.Error), http.StatusInternalServerError)
	case jobs.StateCanceled:
		s.fail(w, r, errors.New("job canceled"), http.StatusGone)
	default: // queued, running, interrupted: not ready yet
		retryAfterHeader(w, doc.RetryAfter(time.Now(), s.cfg.RetryAfter))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	}
}

// handleJobCancel cancels a queued or running job. Terminal jobs
// answer 409 Conflict with the final state in the body.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	doc, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		s.fail(w, r, err, http.StatusNotFound)
	case errors.Is(err, jobs.ErrTerminal):
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	case err != nil:
		s.fail(w, r, err, http.StatusInternalServerError)
	default:
		s.writeJSON(w, doc)
	}
}

// jobsDebugDoc is the /debug/jobs response document.
type jobsDebugDoc struct {
	Count int              `json:"count"`
	Stats []obs.NamedValue `json:"stats"`
	Jobs  []jobs.Doc       `json:"jobs"`
}

// handleJobsDebug lists every job the journal knows, submit-ordered,
// with the manager's counters — the operator view of the durable queue.
func (s *Server) handleJobsDebug(w http.ResponseWriter, r *http.Request) {
	list := s.jobs.List()
	s.writeJSON(w, jobsDebugDoc{Count: len(list), Stats: s.jobs.StatValues(), Jobs: list})
}
