package reportserver

import (
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// fetchTrace polls /debug/traces/{id} until it appears (the store is
// populated after the response is flushed) and decodes the span tree.
func fetchTrace(t *testing.T, base, id string) obs.TraceDoc {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := get(t, base+"/debug/traces/"+id)
		if code == http.StatusOK {
			var doc obs.TraceDoc
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("trace %s not JSON: %v\n%s", id, err, body)
			}
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared in the store (last code %d)", id, code)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTraceColdMissRoundTrip is the tracing acceptance check: a cold
// report request returns an X-Instrep-Trace ID whose stored span tree
// covers the queue wait, the simulation, and the cache write, and a
// warm request's trace records the memory-tier hit with no simulation.
func TestTraceColdMissRoundTrip(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})

	resp, err := http.Get(ts.URL + "/v1/report/goban")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	coldID := resp.Header.Get("X-Instrep-Trace")
	if resp.StatusCode != http.StatusOK || coldID == "" {
		t.Fatalf("cold request: code=%d trace=%q", resp.StatusCode, coldID)
	}

	cold := fetchTrace(t, ts.URL, coldID)
	if cold.ID != coldID || cold.Outcome != "ok" {
		t.Fatalf("cold trace doc: id=%q outcome=%q", cold.ID, cold.Outcome)
	}
	root := cold.Spans
	if root.Name != "GET /v1/report/goban" {
		t.Errorf("root span name = %q", root.Name)
	}
	if got := root.Attrs["status"]; got != float64(http.StatusOK) {
		t.Errorf("root status attr = %v, want 200", got)
	}
	if got := root.Attrs["cache_tier"]; got != "miss" {
		t.Errorf("cold cache_tier = %v, want miss", got)
	}
	if _, ok := root.Attrs["queue_wait_ns"]; !ok {
		t.Error("cold trace missing queue_wait_ns root attr")
	}
	queue := root.Find("queue")
	if queue == nil || queue.Attrs["outcome"] != "admitted" {
		t.Fatalf("queue span missing or not admitted: %+v", queue)
	}
	sim := root.Find("sim")
	if sim == nil || sim.Attrs["workload"] != "goban" {
		t.Fatalf("sim span missing or unlabeled: %+v", sim)
	}
	if root.Find("cache.write") == nil {
		t.Fatal("cold trace missing cache.write span")
	}

	// Warm request: new trace, memory tier, no simulation spans.
	resp, err = http.Get(ts.URL + "/v1/report/goban")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	warmID := resp.Header.Get("X-Instrep-Trace")
	if warmID == "" || warmID == coldID {
		t.Fatalf("warm trace ID %q (cold %q): want a fresh ID per request", warmID, coldID)
	}
	warm := fetchTrace(t, ts.URL, warmID)
	if got := warm.Spans.Attrs["cache_tier"]; got != "memory" {
		t.Errorf("warm cache_tier = %v, want memory", got)
	}
	if warm.Spans.Find("sim") != nil {
		t.Error("warm trace has a sim span: cache hit must not simulate")
	}
	if sims.Load() != 1 {
		t.Fatalf("simulations = %d, want 1", sims.Load())
	}

	// The listing shows both traces; unknown IDs 404.
	code, body := get(t, ts.URL+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces: %d", code)
	}
	var list struct {
		Count  int                `json:"count"`
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, tr := range list.Traces {
		have[tr.ID] = true
	}
	if !have[coldID] || !have[warmID] {
		t.Errorf("trace list missing request traces: %v", have)
	}
	if code, _ := get(t, ts.URL+"/debug/traces/ffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown trace ID: %d, want 404", code)
	}
}

// TestTraceAlwaysKeepErrors pins the retention policy: error traces are
// flagged kept so they survive floods of healthy traffic.
func TestTraceAlwaysKeepErrors(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})

	resp, err := http.Get(ts.URL + "/v1/report/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Instrep-Trace")
	if resp.StatusCode != http.StatusNotFound || id == "" {
		t.Fatalf("404 request: code=%d trace=%q", resp.StatusCode, id)
	}
	doc := fetchTrace(t, ts.URL, id)
	if doc.Outcome != "error" {
		t.Errorf("404 trace outcome = %q, want error", doc.Outcome)
	}
	_, body := get(t, ts.URL+"/debug/traces")
	var list struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	for _, tr := range list.Traces {
		if tr.ID == id {
			if !tr.Kept {
				t.Error("error trace not in the always-keep class")
			}
			return
		}
	}
	t.Fatalf("error trace %s missing from the listing", id)
}

// TestMetricsPrometheusNegotiation pins the /metrics content
// negotiation and the text exposition itself: ?format=prometheus and a
// text/plain Accept header get version 0.0.4 text with instrep_-
// prefixed families, while the default stays JSON.
func TestMetricsPrometheusNegotiation(t *testing.T) {
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})
	get(t, ts.URL+"/v1/report/goban")

	code, body := get(t, ts.URL+"/metrics?format=prometheus")
	if code != http.StatusOK {
		t.Fatalf("prom metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE instrep_server_requests_report counter",
		"instrep_server_requests_report 1",
		"# TYPE instrep_server_latency_report histogram",
		`instrep_server_latency_report_bucket{le="+Inf"} 1`,
		"instrep_server_latency_report_count 1",
		"# TYPE instrep_server_sims_inflight gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "{le=\"+Inf\"} 0\ninstrep_server_latency_report_sum") {
		t.Error("latency histogram lost its observation")
	}

	// Accept-header negotiation (a Prometheus scraper's default).
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Accept-negotiated Content-Type = %q, want the 0.0.4 text exposition", ct)
	}

	// The default remains the JSON document existing tooling reads.
	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("json metrics: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("default /metrics is not JSON: %v\n%s", err, body)
	}
}

// TestDebugRunsInFlight drives a real simulation slowed by an injected
// SlowStep fault and observes it through /debug/runs while it is still
// retiring instructions: benchmark, phase, and a monotonically
// advancing retire count. A fault plan also makes the config
// uncacheable, so the simulation genuinely runs.
func TestDebugRunsInFlight(t *testing.T) {
	cfg := repro.QuickConfig()
	cfg.SkipInstructions = 100
	cfg.MeasureInstructions = 1_000_000
	cfg.Faults = faultinject.NewPlan(faultinject.Fault{
		Kind:     faultinject.SlowStep,
		Workload: "lzw",
		At:       50,
		Delay:    500 * time.Microsecond,
	})
	_, ts := newTestServer(t, Config{RunConfig: cfg})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/report/lzw", nil)
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()

	var seen repro.RunInfo
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := get(t, ts.URL+"/debug/runs")
		if code != http.StatusOK {
			t.Fatalf("/debug/runs: %d", code)
		}
		var doc struct {
			Count int             `json:"count"`
			Runs  []repro.RunInfo `json:"runs"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("/debug/runs not JSON: %v\n%s", err, body)
		}
		if doc.Count >= 1 && doc.Runs[0].Retired > 0 {
			seen = doc.Runs[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("simulation never appeared in /debug/runs")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if seen.Benchmark != "lzw" {
		t.Errorf("in-flight run benchmark = %q, want lzw", seen.Benchmark)
	}
	if seen.Phase == "" {
		t.Error("in-flight run has no phase")
	}
	if seen.TraceID == "" {
		t.Error("in-flight run not linked to its request trace")
	}
	if seen.ElapsedNS <= 0 {
		t.Errorf("elapsed_ns = %d, want > 0", seen.ElapsedNS)
	}

	// Hang up; the run aborts through its context and leaves the
	// registry.
	cancel()
	<-done
	deadline = time.Now().Add(10 * time.Second)
	for {
		_, body := get(t, ts.URL+"/debug/runs")
		var doc struct {
			Count int `json:"count"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Count == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("aborted run never left /debug/runs")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAccessLogJSON pins satellite (b): with an access log configured,
// every request emits one structured JSON line carrying method, path,
// status, outcome, latency, and — for traced endpoints — the trace ID
// and cache tier.
func TestAccessLogJSON(t *testing.T) {
	var buf syncBuffer
	var sims atomic.Int64
	_, ts := newTestServer(t, Config{
		Run:       fakeRun(&sims, 0),
		AccessLog: obs.NewJSONLogger(&buf, obs.LevelInfo),
	})

	resp, err := http.Get(ts.URL + "/v1/report/goban")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get("X-Instrep-Trace")

	// The line is written after the response flushes; wait for it.
	var line string
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := buf.String(); strings.Contains(s, "/v1/report/goban") {
			line = s
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no access log line emitted; buffer: %q", buf.String())
		}
		time.Sleep(2 * time.Millisecond)
	}

	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, line)
	}
	checks := map[string]any{
		"method":     "GET",
		"path":       "/v1/report/goban",
		"status":     float64(http.StatusOK),
		"outcome":    "ok",
		"trace":      traceID,
		"cache_tier": "miss",
	}
	for k, want := range checks {
		if got := entry[k]; got != want {
			t.Errorf("access log %s = %v, want %v", k, got, want)
		}
	}
	if v, ok := entry["latency_ns"].(float64); !ok || v <= 0 {
		t.Errorf("access log latency_ns = %v, want > 0", entry["latency_ns"])
	}
}

// syncBuffer is a goroutine-safe strings.Builder for log capture.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// metricNamePattern is the repo-wide metric naming rule: snake_case,
// subsystem-prefixed.
var metricNamePattern = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// TestMetricNamesPinned is the metric-name lint (satellite e): every
// name the server registry can emit matches the snake_case rule and is
// on the pinned list below. Renaming a metric breaks dashboards and
// recording rules — extend the list deliberately, don't drift.
func TestMetricNamesPinned(t *testing.T) {
	pinned := map[string]bool{
		// counters
		"server_requests_healthz":           true,
		"server_requests_metrics":           true,
		"server_requests_workloads":         true,
		"server_requests_report":            true,
		"server_requests_tables":            true,
		"server_requests_traces":            true,
		"server_requests_trace":             true,
		"server_requests_runs":              true,
		"server_requests_client_disconnect": true,
		"server_errors":                     true,
		"server_shed":                       true,
		"server_breaker_rejected":           true,
		"server_stale_served":               true,
		// gauges
		"server_queue_depth":   true,
		"server_sims_inflight": true,
		"server_breakers_open": true,
		// latency histograms
		"server_latency_healthz":    true,
		"server_latency_metrics":    true,
		"server_latency_workloads":  true,
		"server_latency_report":     true,
		"server_latency_tables":     true,
		"server_latency_traces":     true,
		"server_latency_trace":      true,
		"server_latency_runs":       true,
		"server_latency_shed":       true,
		"server_latency_disconnect": true,
	}

	var sims atomic.Int64
	_, ts := newTestServer(t, Config{Run: fakeRun(&sims, 0)})
	// Touch every endpoint class so the lazily created metrics exist.
	for _, path := range []string{
		"/healthz",
		"/v1/workloads",
		"/v1/report/goban",
		"/v1/report/nope", // 404 → server_errors
		"/v1/tables/goban",
		"/debug/traces",
		"/debug/traces/ffffffffffffffff",
		"/debug/runs",
		"/metrics",
	} {
		get(t, ts.URL+path)
	}

	_, body := get(t, ts.URL+"/metrics")
	var doc struct {
		Requests []obs.NamedValue     `json:"requests"`
		Gauges   []obs.NamedValue     `json:"gauges"`
		Latency  []obs.NamedHistogram `json:"latency"`
		Cache    []obs.NamedValue     `json:"cache"`
		Health   []obs.NamedValue     `json:"health"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}

	lint := func(section, name string, pin bool) {
		t.Helper()
		if !metricNamePattern.MatchString(name) {
			t.Errorf("%s metric %q violates snake_case naming", section, name)
		}
		if pin && !pinned[name] {
			t.Errorf("%s metric %q is not on the pinned list — renames break scrape configs; extend the list deliberately", section, name)
		}
	}
	for _, v := range doc.Requests {
		lint("requests", v.Name, true)
	}
	for _, v := range doc.Gauges {
		lint("gauges", v.Name, true)
	}
	for _, h := range doc.Latency {
		lint("latency", h.Name, true)
	}
	// Cache and health names feed the instrep_cache_ / instrep_health_
	// prom families: lint the shape, ownership lives in their packages.
	for _, v := range doc.Cache {
		lint("cache", v.Name, false)
	}
	for _, v := range doc.Health {
		lint("health", v.Name, false)
	}
}
