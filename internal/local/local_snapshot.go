package local

import (
	"sort"

	"repro/internal/checkpoint"
)

// nTags is the number of valid ltag values (lArg is the highest).
const nTags = int(lArg) + 1

// snapshotFrame writes one activation frame. The fn pointer encodes
// as its entry address (0 = nil, below any real text address); the pe
// cache is derived state — on resume the first prologue/epilogue
// instruction re-resolves it from the restored peByFunc table.
func snapshotFrame(w *checkpoint.Writer, fr *frame) {
	entry := uint32(0)
	if fr.fn != nil {
		entry = fr.fn.Entry
	}
	w.U32(entry)
	for _, t := range fr.regs {
		w.U8(byte(t))
	}
	for _, u := range fr.uninit {
		w.Bool(u)
	}
	for _, t := range fr.savedRegs {
		w.U8(byte(t))
	}
	w.U32(uint32(len(fr.saves)))
	for _, s := range fr.saves {
		w.U32(s)
	}
}

// restoreFrame loads one activation frame.
func (a *Analysis) restoreFrame(r *checkpoint.Reader, fr *frame) error {
	entry := r.U32()
	if entry != 0 {
		fr.fn = a.image.FuncByEntry(entry)
		if r.Err() == nil && fr.fn == nil {
			return checkpoint.ErrMalformed
		}
	} else {
		fr.fn = nil
	}
	for i := range fr.regs {
		fr.regs[i] = ltag(r.U8())
		if r.Err() == nil && int(fr.regs[i]) >= nTags {
			return checkpoint.ErrMalformed
		}
	}
	for i := range fr.uninit {
		fr.uninit[i] = r.Bool()
	}
	for i := range fr.savedRegs {
		fr.savedRegs[i] = ltag(r.U8())
		if r.Err() == nil && int(fr.savedRegs[i]) >= nTags {
			return checkpoint.ErrMalformed
		}
	}
	ns := r.Count(4)
	fr.saves = make([]uint32, ns)
	for i := range fr.saves {
		fr.saves[i] = r.U32()
	}
	fr.pe = nil
	return r.Err()
}

// SnapshotTo writes the analysis state: the stack shadow space, the
// activation stack and root frame, the category counters, the Table 9
// table in name order, and each observed load site's value histogram
// inverted into index order (the insertion order counts[] depends
// on). Counting is reapplied by the core pipeline on resume.
func (a *Analysis) SnapshotTo(w *checkpoint.Writer) {
	a.shadow.SnapshotTo(w)
	snapshotFrame(w, &a.root)
	w.U32(uint32(len(a.stack)))
	for i := range a.stack {
		snapshotFrame(w, &a.stack[i])
	}
	for _, v := range a.overall {
		w.U64(v)
	}
	for _, v := range a.repeated {
		w.U64(v)
	}

	names := make([]string, 0, len(a.peByFunc))
	for name := range a.peByFunc {
		names = append(names, name)
	}
	sort.Strings(names)
	w.U32(uint32(len(names)))
	for _, name := range names {
		pe := a.peByFunc[name]
		w.String(name)
		entry := uint32(0)
		if pe.fn != nil {
			entry = pe.fn.Entry
		}
		w.U32(entry)
		w.U64(pe.total)
		w.U64(pe.repeated)
	}

	w.U32(uint32(len(a.loadSites)))
	count := 0
	for _, site := range a.loadSites {
		if site != nil {
			count++
		}
	}
	w.U32(uint32(count))
	for idx, site := range a.loadSites {
		if site == nil {
			continue
		}
		w.U32(uint32(idx))
		vals := make([]uint32, len(site.counts))
		for v, i := range site.values {
			vals[i] = v
		}
		w.U32(uint32(len(vals)))
		for _, v := range vals {
			w.U32(v)
		}
		for _, c := range site.counts {
			w.U64(c)
		}
		w.U32(site.last)
		w.U32(site.lastIx)
		w.Bool(site.full)
	}
}

// maxSnapshotSites bounds the dense load-site table length a snapshot
// may claim (matches the largest text segment the tracker tables
// accept).
const maxSnapshotSites = 1 << 22

// RestoreFrom rebuilds the analysis from a snapshot.
func (a *Analysis) RestoreFrom(r *checkpoint.Reader) error {
	if err := a.shadow.RestoreFrom(r); err != nil {
		return err
	}
	if err := a.restoreFrame(r, &a.root); err != nil {
		return err
	}
	ns := r.Count(4 + 3*34 + 4)
	a.stack = make([]frame, ns)
	for i := range a.stack {
		if err := a.restoreFrame(r, &a.stack[i]); err != nil {
			return err
		}
	}
	for i := range a.overall {
		a.overall[i] = r.U64()
	}
	for i := range a.repeated {
		a.repeated[i] = r.U64()
	}

	np := r.Count(4 + 4 + 2*8)
	a.peByFunc = make(map[string]*perFuncPE, np)
	for i := 0; i < np; i++ {
		name := r.String()
		pe := &perFuncPE{}
		entry := r.U32()
		if entry != 0 {
			pe.fn = a.image.FuncByEntry(entry)
			if r.Err() == nil && pe.fn == nil {
				return checkpoint.ErrMalformed
			}
		}
		pe.total = r.U64()
		pe.repeated = r.U64()
		a.peByFunc[name] = pe
	}
	if r.Err() == nil && len(a.peByFunc) != np {
		return checkpoint.ErrMalformed
	}

	tableLen := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if tableLen > maxSnapshotSites {
		return checkpoint.ErrMalformed
	}
	a.loadSites = make([]*loadSite, tableLen)
	nsites := r.Count(4 + 4 + 4 + 4 + 1)
	prev := -1
	for i := 0; i < nsites; i++ {
		idx := int(r.U32())
		if r.Err() != nil {
			return r.Err()
		}
		if idx <= prev || idx >= tableLen {
			return checkpoint.ErrMalformed
		}
		prev = idx
		nv := r.Count(4)
		if nv == 0 || nv > maxLoadValues {
			// A live site always holds at least one value.
			return checkpoint.ErrMalformed
		}
		site := &loadSite{
			values: make(map[uint32]uint32, nv),
			counts: make([]uint64, nv),
		}
		for vi := 0; vi < nv; vi++ {
			site.values[r.U32()] = uint32(vi)
		}
		if r.Err() == nil && len(site.values) != nv {
			return checkpoint.ErrMalformed
		}
		for vi := range site.counts {
			site.counts[vi] = r.U64()
		}
		site.last = r.U32()
		site.lastIx = r.U32()
		site.full = r.Bool()
		if r.Err() == nil && int(site.lastIx) >= nv {
			return checkpoint.ErrMalformed
		}
		a.loadSites[idx] = site
	}
	// The heap base is derived from the image, not the snapshot; a
	// mismatched image cannot sneak in because the checkpoint key pins
	// the workload.
	a.heapBase = a.image.HeapBase()
	return r.Err()
}
