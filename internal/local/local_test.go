package local_test

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/local"
	"repro/internal/minic"
)

// run compiles src, executes it to completion with the local analysis
// attached (counting from the start), and returns the result.
func run(t *testing.T, src string) (local.Result, *local.Analysis) {
	t.Helper()
	im, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := cpu.New(im, nil)
	a := local.New(im)
	a.Counting = true
	m.Attach(obs{a})
	if _, err := m.Run(20_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !m.Halted {
		t.Fatal("did not finish")
	}
	return a.Result(), a
}

// obs adapts the analysis to the cpu observer interfaces.
type obs struct{ a *local.Analysis }

// Every instruction is reported as repeated so repetition-keyed
// outputs (Table 9 coverage) are exercised; category binning itself is
// independent of the flag.
func (o obs) OnInst(ev *cpu.Event)      { o.a.Observe(ev, true) }
func (o obs) OnCall(ev *cpu.CallEvent)  { o.a.OnCall(ev) }
func (o obs) OnReturn(ev *cpu.RetEvent) { o.a.OnReturn(ev) }

func TestCategoriesSumTo100(t *testing.T) {
	r, _ := run(t, `
int g = 5;
int add(int a, int b) { return a + b + g; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 20; i++) { s = add(s, i); }
	return s;
}`)
	var sum float64
	for _, v := range r.OverallPct {
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("overall sums to %v", sum)
	}
}

func TestPrologueEpilogueBalance(t *testing.T) {
	// A non-leaf function saves/restores $ra and s-registers: prologue
	// and epilogue counts must be positive and equal (every save has
	// its restore).
	r, _ := run(t, `
int leaf(int x) { return x * 3; }
int wrap(int x) {
	int a;
	int b;
	a = leaf(x);
	b = leaf(x + 1);
	return a + b;
}
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 30; i++) { s += wrap(i); }
	return s;
}`)
	if r.Counts[local.CatPrologue] == 0 {
		t.Fatal("no prologue instructions observed")
	}
	if r.Counts[local.CatPrologue] != r.Counts[local.CatEpilogue] {
		t.Errorf("prologue %d != epilogue %d",
			r.Counts[local.CatPrologue], r.Counts[local.CatEpilogue])
	}
}

func TestReturnCategoryCountsReturns(t *testing.T) {
	r, _ := run(t, `
int f(int x) { return x; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 10; i++) { s += f(i); }
	return s;
}`)
	// Returns: 10 from f + 1 from main + runtime entry (__start calls
	// main only). At least 11.
	if r.Counts[local.CatReturn] < 11 {
		t.Errorf("returns = %d, want >= 11", r.Counts[local.CatReturn])
	}
}

func TestGlobalAndHeapCategories(t *testing.T) {
	r, _ := run(t, `
int table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int main() {
	int *h;
	int s;
	int i;
	h = malloc(8 * sizeof(int));
	for (i = 0; i < 8; i++) { h[i] = table[i] * 2; }
	s = 0;
	for (i = 0; i < 8; i++) { s += h[i] + table[i]; }
	return s;
}`)
	if r.Counts[local.CatGlobal] == 0 {
		t.Error("no global-slice instructions")
	}
	if r.Counts[local.CatHeap] == 0 {
		t.Error("no heap-slice instructions")
	}
}

func TestArgumentCategory(t *testing.T) {
	r, _ := run(t, `
int poly(int x) { return x * x + x * 3 + 7; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 50; i++) { s += poly(i); }
	return s;
}`)
	if r.Counts[local.CatArgument] == 0 {
		t.Error("no argument-slice instructions")
	}
}

func TestRetValCategory(t *testing.T) {
	r, _ := run(t, `
int give() { return 21; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 20; i++) { s += give() * 2; }
	return s;
}`)
	if r.Counts[local.CatRetVal] == 0 {
		t.Error("no return-value-slice instructions")
	}
}

func TestGlbAddrCalc(t *testing.T) {
	// Forcing la-style addressing: address-of a global taken
	// explicitly.
	r, _ := run(t, `
int table[64];
int *grab(int i) { return &table[i]; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 30; i++) { *grab(i & 63) = i; s += table[i & 63]; }
	return s;
}`)
	if r.Counts[local.CatGlbAddrCalc] == 0 {
		t.Error("no glb_addr_calc instructions")
	}
}

func TestTopPrologueEpilogue(t *testing.T) {
	_, a := run(t, `
int quiet(int x);
int busy(int x) {
	int a; int b; int c;
	a = x + 1;
	b = a * 2;
	c = b - x;
	return quiet(c) + a;
}
int quiet(int x) { return x; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 40; i++) { s += busy(i); }
	return s;
}`)
	rows, coverage := a.TopPrologueEpilogue(5)
	if len(rows) == 0 {
		t.Fatal("no prologue/epilogue contributors")
	}
	if coverage <= 0 || coverage > 100 {
		t.Errorf("coverage = %v", coverage)
	}
	// Rows are sorted by contribution.
	for i := 1; i < len(rows); i++ {
		if rows[i].Repeated > rows[i-1].Repeated {
			t.Error("rows not sorted by contribution")
		}
	}
	// busy must appear and carry a plausible size.
	found := false
	for _, row := range rows {
		if row.Name == "busy" && row.Size > 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("busy not among top contributors: %+v", rows)
	}
}

func TestTopLoadValueCoverage(t *testing.T) {
	_, a := run(t, `
int flag = 7;
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 100; i++) { s += flag; }
	return s;
}`)
	cov := a.TopLoadValueCoverage(5)
	if len(cov) != 5 {
		t.Fatalf("cov = %v", cov)
	}
	// flag always loads 7: its top value covers everything it
	// contributes; overall top-1 coverage should be high.
	if cov[0] < 50 {
		t.Errorf("top-1 coverage = %v, want high for constant loads", cov[0])
	}
	for i := 1; i < 5; i++ {
		if cov[i] < cov[i-1]-1e-9 {
			t.Error("coverage not monotone")
		}
	}
}

func TestCatString(t *testing.T) {
	names := []string{"prologue", "epilogue", "function internals",
		"glb_addr_calc", "return", "SP", "return values", "arguments",
		"global", "heap"}
	for c := local.Cat(0); c < local.NumCats; c++ {
		if c.String() != names[c] {
			t.Errorf("cat %d = %q, want %q", c, c.String(), names[c])
		}
	}
}
