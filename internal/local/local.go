// Package local implements the paper's *local analysis* (Section 5.3):
// within each function activation, dynamic instructions are binned by
// the source of their input data (arguments, global, heap, return
// values, function internals) and by specific task (prologue,
// epilogue, global address calculation, function returns, stack
// pointer operations), under the supersede rule
//
//	argument > return value > (global, heap) > function internal.
//
// It produces Tables 5-7 (overall share, repetition share, and
// propensity per category), the per-function prologue/epilogue
// contributions behind Table 9, and the global-load value-frequency
// coverage of Figure 6.
package local

import (
	"sort"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// Cat is a local-analysis category (one Table 5/6/7 row).
type Cat uint8

// Categories in the paper's row order.
const (
	CatPrologue Cat = iota
	CatEpilogue
	CatFuncInternal
	CatGlbAddrCalc
	CatReturn
	CatSP
	CatRetVal
	CatArgument
	CatGlobal
	CatHeap
	NumCats
)

var catNames = [NumCats]string{
	"prologue", "epilogue", "function internals", "glb_addr_calc",
	"return", "SP", "return values", "arguments", "global", "heap",
}

// String returns the paper's row label.
func (c Cat) String() string {
	if c >= NumCats {
		return "?"
	}
	return catNames[c]
}

// ltag is a value-source tag, ordered by supersede priority. lGAddr is
// a task marker for in-progress global-address computations, not a
// source level; consumed by anything but an address-forming addiu/ori
// it behaves like a function-internal value.
type ltag byte

const (
	lUninit ltag = iota
	lInternal
	lGAddr
	lGlobal
	lHeap
	lRetVal
	lArg
)

// catOfTag maps a source tag to its reporting category.
func catOfTag(t ltag) Cat {
	switch t {
	case lGlobal:
		return CatGlobal
	case lHeap:
		return CatHeap
	case lRetVal:
		return CatRetVal
	case lArg:
		return CatArgument
	default:
		return CatFuncInternal
	}
}

func maxTag(a, b ltag) ltag {
	// lGAddr only survives through the dedicated address-forming
	// path; in a generic merge it degrades to internal.
	if a == lGAddr {
		a = lInternal
	}
	if b == lGAddr {
		b = lInternal
	}
	if a > b {
		return a
	}
	return b
}

// frame is one function activation's local context.
type frame struct {
	fn        *program.Func
	regs      [cpu.NumRegs]ltag
	uninit    [cpu.NumRegs]bool // not yet written in this activation
	saves     []uint32          // stack addresses written by the prologue
	savedRegs [cpu.NumRegs]ltag // caller tags to restore on return
	pe        *perFuncPE        // cached Table 9 record for fn
}

// savedAt reports whether the prologue saved a register at addr. The
// handful of prologue stores per activation makes a linear scan over
// one small slice cheaper than the per-activation map it replaces.
func (fr *frame) savedAt(addr uint32) bool {
	for _, a := range fr.saves {
		if a == addr {
			return true
		}
	}
	return false
}

// loadSite tracks the value-frequency histogram for one static load
// from global or heap memory (Figure 6).
type loadSite struct {
	// values maps a loaded value to its index in counts; the
	// indirection makes the common case (a value seen before) one map
	// lookup plus a slice increment, and the last-value cache below
	// skips even that when a site keeps delivering the same value —
	// which is precisely the repetition Figure 6 measures.
	values map[uint32]uint32
	counts []uint64
	last   uint32 // last value observed; valid only when counts is non-empty
	lastIx uint32 // its index in counts
	full   bool
}

// maxLoadValues bounds the tracked distinct values per load site.
const maxLoadValues = 4096

// perFuncPE is per-function prologue+epilogue accounting (Table 9).
type perFuncPE struct {
	fn       *program.Func
	total    uint64
	repeated uint64
}

// Analysis is the local analysis.
type Analysis struct {
	// Counting gates the statistics; activation frames and value tags
	// always update so the within-function context is correct when
	// the measurement window opens mid-run.
	Counting bool

	image    *program.Image
	heapBase uint32
	shadow   *mem.Shadow // stack value tags

	stack []frame
	root  frame

	overall  [NumCats]uint64
	repeated [NumCats]uint64

	peByFunc map[string]*perFuncPE
	// loadSites is dense over the text segment: loadSites[(pc-TextBase)>>2]
	// (nil = load site never observed).
	loadSites []*loadSite
}

// New creates the analysis for one program image.
func New(im *program.Image) *Analysis {
	a := &Analysis{
		image:     im,
		heapBase:  im.HeapBase(),
		shadow:    mem.NewShadow(),
		peByFunc:  make(map[string]*perFuncPE),
		loadSites: make([]*loadSite, im.StaticInstructions()),
	}
	a.root = newFrame(nil, 0)
	return a
}

func newFrame(fn *program.Func, nargs int) frame {
	var fr frame
	fr.fn = fn
	for r := 0; r < cpu.NumRegs; r++ {
		fr.uninit[r] = true
		fr.regs[r] = lUninit
	}
	for i := 0; i < nargs && i < 4; i++ {
		fr.uninit[isa.RegA0+i] = false
		fr.regs[isa.RegA0+i] = lArg
	}
	for _, r := range []int{isa.RegZero, isa.RegSP, isa.RegGP} {
		fr.uninit[r] = false
		fr.regs[r] = lInternal
	}
	return fr
}

func (a *Analysis) cur() *frame {
	if len(a.stack) == 0 {
		return &a.root
	}
	return &a.stack[len(a.stack)-1]
}

// OnCall enters a new activation.
func (a *Analysis) OnCall(ev *cpu.CallEvent) {
	nargs := 0
	fn := ev.Callee
	if fn != nil {
		nargs = fn.NArgs
	}
	fr := newFrame(fn, nargs)
	fr.savedRegs = a.cur().regs
	// Stack-passed arguments: tag the incoming slots so loads of
	// argument 5.. classify as arguments.
	for i := 4; i < nargs && i < cpu.MaxTrackedArgs; i++ {
		a.shadow.Set(ev.SP+uint32(4*i), byte(lArg))
	}
	a.stack = append(a.stack, fr)
}

// OnReturn leaves the innermost activation: the caller's tags are
// restored and $v0/$v1 become return-value slices.
func (a *Analysis) OnReturn(ev *cpu.RetEvent) {
	if len(a.stack) == 0 {
		return
	}
	fr := a.stack[len(a.stack)-1]
	a.stack = a.stack[:len(a.stack)-1]
	c := a.cur()
	c.regs = fr.savedRegs
	c.regs[isa.RegV0] = lRetVal
	c.regs[isa.RegV1] = lRetVal
	c.uninit[isa.RegV0] = false
	c.uninit[isa.RegV1] = false
}

// Observe categorizes one retired instruction.
func (a *Analysis) Observe(ev *cpu.Event, repeated bool) {
	fr := a.cur()
	cat := a.classify(ev, fr)
	if !a.Counting {
		return
	}
	a.overall[cat]++
	if repeated {
		a.repeated[cat]++
	}
	if cat == CatPrologue || cat == CatEpilogue {
		pe := fr.pe
		if pe == nil {
			// Resolve and cache the function's Table 9 record on the
			// activation so later prologue/epilogue instructions skip
			// the by-name lookup.
			name := "?"
			var fn *program.Func
			if fr.fn != nil {
				name = fr.fn.Name
				fn = fr.fn
			}
			pe = a.peByFunc[name]
			if pe == nil {
				pe = &perFuncPE{fn: fn}
				a.peByFunc[name] = pe
			}
			fr.pe = pe
		}
		pe.total++
		if repeated {
			pe.repeated++
		}
	}
}

// classify bins the instruction and propagates tags, then marks the
// written destination(s) as initialized in this activation. The
// marking runs after binning (classifyTag's prologue test reads the
// pre-write uninit state), which classifyTag's callees must not
// shortcut.
func (a *Analysis) classify(ev *cpu.Event, fr *frame) Cat {
	cat := a.classifyTag(ev, fr)
	if ev.Dst > 0 {
		fr.uninit[ev.Dst] = false
	}
	if ev.Aux > 0 {
		fr.uninit[ev.Aux] = false
	}
	return cat
}

// classifyTag is classify's binning body.
func (a *Analysis) classifyTag(ev *cpu.Event, fr *frame) Cat {
	in := ev.Inst
	op := in.Op

	switch {
	case op == isa.OpJR && in.Rs == isa.RegRA:
		return CatReturn

	case ev.IsStore:
		dataTag := fr.regs[ev.Src2]
		a.shadow.Set(ev.Addr, byte(dataTag))
		if fr.uninit[ev.Src2] {
			// Saving a not-yet-written (callee-saved or $ra)
			// register: prologue.
			if !fr.savedAt(ev.Addr) {
				fr.saves = append(fr.saves, ev.Addr)
			}
			return CatPrologue
		}
		return catOfTag(dataTag)

	case ev.IsLoad:
		if fr.savedAt(ev.Addr) {
			// Reloading a prologue-saved register: epilogue. The
			// restored register belongs to the caller; its tag is
			// re-established by OnReturn.
			fr.regs[ev.Dst] = lInternal
			return CatEpilogue
		}
		// A load is binned by the origin of the *value* it delivers
		// ("data loaded from the data segment are tagged as global"):
		// the address computation's slice is carried by the
		// address-forming instructions themselves.
		var t ltag
		switch {
		case ev.Addr >= program.DataBase && ev.Addr < a.heapBase:
			t = lGlobal
			a.trackLoad(ev)
		case ev.Addr >= a.heapBase && ev.Addr < program.StackLimit:
			t = lHeap
			a.trackLoad(ev)
		default:
			t = ltag(a.shadow.Get(ev.Addr))
			if t == lGAddr {
				t = lInternal
			}
		}
		fr.setReg(ev.Dst, t)
		return catOfTag(t)

	case op == isa.OpADDIU && in.Rs == isa.RegSP && in.Rt == isa.RegSP:
		// Stack frame allocation / deallocation.
		if in.Imm < 0 {
			return CatPrologue
		}
		return CatEpilogue

	case ev.Src1 == isa.RegSP || ev.Src2 == isa.RegSP:
		// Computing on the stack pointer (e.g. the address of a
		// local).
		fr.setReg(ev.Dst, lInternal)
		return CatSP

	case op == isa.OpLUI && a.isDataSegAddrHigh(uint32(in.Imm)):
		fr.setReg(ev.Dst, lGAddr)
		return CatGlbAddrCalc

	case (op == isa.OpADDIU || op == isa.OpORI) && ev.Src1 >= 0 && fr.regs[ev.Src1] == lGAddr:
		// Completing a lui/addiu global-address pair.
		fr.setReg(ev.Dst, lGAddr)
		return CatGlbAddrCalc

	case op == isa.OpADDIU && in.Rs == isa.RegGP:
		// $gp-relative address formation.
		fr.setReg(ev.Dst, lGAddr)
		return CatGlbAddrCalc

	case op == isa.OpSYSCALL:
		t := maxTag(fr.regs[ev.Src1], fr.regs[ev.Src2])
		// Values delivered by the OS behave like returned values.
		fr.setReg(ev.Dst, lRetVal)
		return catOfTag(t)

	default:
		t := lUninit
		if ev.Src1 >= 0 {
			t = maxTag(t, fr.regs[ev.Src1])
		}
		if ev.Src2 >= 0 {
			t = maxTag(t, fr.regs[ev.Src2])
		}
		if hasImmediateInput(op) || (ev.Src1 < 0 && ev.Src2 < 0) {
			t = maxTag(t, lInternal)
		}
		fr.setReg(ev.Dst, t)
		if ev.Aux >= 0 {
			fr.setReg(ev.Aux, t)
		}
		return catOfTag(t)
	}
}

func (fr *frame) setReg(r int16, t ltag) {
	if r > 0 {
		fr.regs[r] = t
	}
}

func hasImmediateInput(op isa.Op) bool {
	switch isa.OpKind(op) {
	case isa.KindALUImm, isa.KindLUI, isa.KindShift, isa.KindJump:
		return true
	default:
		return false
	}
}

// isDataSegAddrHigh reports whether a lui immediate forms the high
// half of a data-segment address.
func (a *Analysis) isDataSegAddrHigh(imm uint32) bool {
	hi := imm << 16
	end := program.DataBase + uint32(len(a.image.Data)) + 0x10000
	return hi >= program.DataBase&0xffff0000 && hi < end
}

// trackLoad records the loaded value for Figure 6.
func (a *Analysis) trackLoad(ev *cpu.Event) {
	if ev.PC < program.TextBase {
		return // not a text PC; unreachable for retired instructions
	}
	idx := int((ev.PC - program.TextBase) >> 2)
	if idx >= len(a.loadSites) {
		// A retired PC past the image's text (not reachable in
		// practice); grow rather than lose the site.
		grown := make([]*loadSite, idx+1)
		copy(grown, a.loadSites)
		a.loadSites = grown
	}
	site := a.loadSites[idx]
	if site == nil {
		site = &loadSite{values: make(map[uint32]uint32, 4)}
		a.loadSites[idx] = site
	}
	v := ev.MemVal
	if len(site.counts) > 0 && site.last == v {
		site.counts[site.lastIx]++
		return
	}
	if i, seen := site.values[v]; seen {
		site.counts[i]++
		site.last, site.lastIx = v, i
		return
	}
	if len(site.counts) >= maxLoadValues {
		site.full = true
		return
	}
	i := uint32(len(site.counts))
	site.values[v] = i
	site.counts = append(site.counts, 1)
	site.last, site.lastIx = v, i
}

// Result carries Tables 5-7.
type Result struct {
	OverallPct    [NumCats]float64 // Table 5
	RepeatedPct   [NumCats]float64 // Table 6
	PropensityPct [NumCats]float64 // Table 7
	Counts        [NumCats]uint64
}

// Result computes the category percentages.
func (a *Analysis) Result() Result {
	var r Result
	var total, totalRep uint64
	for c := Cat(0); c < NumCats; c++ {
		total += a.overall[c]
		totalRep += a.repeated[c]
	}
	for c := Cat(0); c < NumCats; c++ {
		r.Counts[c] = a.overall[c]
		r.OverallPct[c] = pct(a.overall[c], total)
		r.RepeatedPct[c] = pct(a.repeated[c], totalRep)
		r.PropensityPct[c] = pct(a.repeated[c], a.overall[c])
	}
	return r
}

// PERow is one Table 9 contributor.
type PERow struct {
	Name     string
	Size     int // static instructions (paper shows this per function)
	Repeated uint64
}

// TopPrologueEpilogue returns the top-n contributors to
// prologue+epilogue repetition and the fraction of all such repetition
// they cover (Table 9).
func (a *Analysis) TopPrologueEpilogue(n int) (rows []PERow, coveragePct float64) {
	var all []PERow
	var total uint64
	for name, pe := range a.peByFunc {
		size := 0
		if pe.fn != nil {
			size = pe.fn.Size()
		}
		all = append(all, PERow{Name: name, Size: size, Repeated: pe.repeated})
		total += pe.repeated
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Repeated != all[j].Repeated {
			return all[i].Repeated > all[j].Repeated
		}
		return all[i].Name < all[j].Name
	})
	var covered uint64
	for i := 0; i < n && i < len(all); i++ {
		rows = append(rows, all[i])
		covered += all[i].Repeated
	}
	return rows, pct(covered, total)
}

// TopLoadValueCoverage computes Figure 6: for k = 1..maxK, the share
// of global/heap load repetition covered by each load site's k most
// frequent values.
func (a *Analysis) TopLoadValueCoverage(maxK int) []float64 {
	covered := make([]uint64, maxK)
	var total uint64
	for _, site := range a.loadSites {
		if site == nil {
			continue
		}
		counts := make([]uint64, 0, len(site.counts))
		for _, n := range site.counts {
			if n >= 2 {
				counts = append(counts, n-1)
			}
		}
		sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
		for i := 0; i < maxK && i < len(counts); i++ {
			covered[i] += counts[i]
		}
		for _, n := range counts {
			total += n
		}
	}
	out := make([]float64, maxK)
	var cum uint64
	for i := 0; i < maxK; i++ {
		cum += covered[i]
		out[i] = pct(cum, total)
	}
	return out
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Name identifies the analysis in observability output.
func (a *Analysis) Name() string { return "local" }
